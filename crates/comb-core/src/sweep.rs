//! Method configuration and sweep helpers.

use comb_hw::{FaultPlan, HwConfig};

/// Which simulated platform a run uses.
#[derive(Debug, Clone, PartialEq)]
pub enum Transport {
    // Boxing the custom config keeps the enum a single word for the
    // common preset variants.
    /// GM 1.4 + MPICH/GM on Myrinet (OS-bypass, library progress).
    Gm,
    /// Portals 3.0 kernel module on Myrinet (interrupts, full offload).
    Portals,
    /// EMP-like NIC-offload gigabit Ethernet (extension platform).
    Emp,
    /// Any explicit hardware description.
    Custom(Box<HwConfig>),
}

impl From<HwConfig> for Transport {
    fn from(cfg: HwConfig) -> Self {
        Transport::Custom(Box::new(cfg))
    }
}

impl Transport {
    /// Resolve to a full hardware configuration.
    pub fn config(&self) -> HwConfig {
        match self {
            Transport::Gm => HwConfig::gm_myrinet(),
            Transport::Portals => HwConfig::portals_myrinet(),
            Transport::Emp => HwConfig::emp_ethernet(),
            Transport::Custom(cfg) => (**cfg).clone(),
        }
    }

    /// Platform name for labels.
    pub fn name(&self) -> String {
        self.config().name
    }
}

/// Parameters shared by both COMB methods for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodConfig {
    /// Platform under test.
    pub transport: Transport,
    /// Message payload size in bytes.
    pub msg_bytes: u64,
    /// Polling method: messages kept in flight per direction (the paper's
    /// message queue; queue size 1 degenerates to ping-pong).
    pub queue_depth: usize,
    /// PWW method: messages posted per direction per post-work-wait cycle.
    pub batch: usize,
    /// PWW method: cycles averaged per sample point.
    pub cycles: u64,
    /// Polling method: target total work iterations per point (the actual
    /// count adapts to keep at least [`MethodConfig::min_intervals`] and at
    /// most [`MethodConfig::max_intervals`] poll intervals).
    pub target_iters: u64,
    /// Polling method: minimum poll intervals per point.
    pub min_intervals: u64,
    /// Polling method: maximum poll intervals per point (bounds simulation
    /// cost at tiny poll intervals).
    pub max_intervals: u64,
    /// Worker threads used by sweeps over this configuration. `0` means
    /// auto: the `COMB_JOBS` environment variable if set, otherwise the
    /// platform's available parallelism. Any value produces byte-identical
    /// results; only wall-clock time changes.
    pub jobs: usize,
    /// Fault-injection plan applied to the transport's hardware (the
    /// default injects nothing). Faulted sweeps stay byte-deterministic:
    /// the plan is seeded and every point resolves it identically.
    pub fault: FaultPlan,
    /// Kernel watchdog bounding every point of this configuration
    /// (`None`, the default, runs unwatched). A tripped watchdog aborts
    /// only the offending point — under the resilient pool its sweep
    /// keeps draining. The watchdog observes the simulation without
    /// perturbing it, so arming it cannot change any sample.
    pub watchdog: Option<comb_sim::WatchdogConfig>,
}

impl MethodConfig {
    /// Defaults matching the paper's setup for the given transport and
    /// message size.
    pub fn new(transport: Transport, msg_bytes: u64) -> MethodConfig {
        MethodConfig {
            transport,
            msg_bytes,
            queue_depth: 4,
            batch: 1,
            cycles: 12,
            target_iters: 8_000_000, // 32 ms of work at 4 ns/iter
            min_intervals: 8,
            max_intervals: 20_000,
            jobs: 0,
            fault: FaultPlan::none(),
            watchdog: None,
        }
    }

    /// The transport's hardware description with this configuration's
    /// fault plan installed (and, if the plan drops control messages, the
    /// rendezvous retry protocol armed).
    pub fn resolved_hw(&self) -> HwConfig {
        let mut hw = self.transport.config();
        if !self.fault.is_none() {
            self.fault.apply_to(&mut hw);
        }
        hw
    }

    /// Number of poll intervals to run for a given poll interval length.
    pub fn intervals_for(&self, poll_interval: u64) -> u64 {
        (self.target_iters / poll_interval.max(1)).clamp(self.min_intervals, self.max_intervals)
    }
}

/// Log-spaced integer points from `lo` to `hi` inclusive, `per_decade`
/// points per factor of ten. This is how the paper's x-axes (poll/work
/// interval in loop iterations) are swept.
///
/// The result is strictly increasing *by construction*: a candidate that
/// rounds onto (or below) the previous point is skipped, so collapsing
/// decades at the small end can never yield duplicates or inversions.
/// Both endpoints are always present.
pub fn log_spaced(lo: u64, hi: u64, per_decade: u32) -> Vec<u64> {
    assert!(lo >= 1 && hi >= lo && per_decade >= 1);
    let lg_lo = (lo as f64).log10();
    let lg_hi = (hi as f64).log10();
    let steps = ((lg_hi - lg_lo) * per_decade as f64).ceil() as usize;
    let mut points = vec![lo];
    for i in 1..=steps {
        let lg = lg_lo + (lg_hi - lg_lo) * i as f64 / steps.max(1) as f64;
        let v = (10f64.powf(lg).round() as u64).clamp(lo, hi);
        if v > *points.last().unwrap() {
            points.push(v);
        }
    }
    if *points.last().unwrap() < hi {
        points.push(hi);
    }
    points
}

/// Linearly spaced integer points from `lo` to `hi` inclusive.
pub fn lin_spaced(lo: u64, hi: u64, n: usize) -> Vec<u64> {
    assert!(n >= 2 && hi >= lo);
    (0..n)
        .map(|i| lo + (hi - lo) * i as u64 / (n as u64 - 1))
        .collect()
}

/// The paper's message sizes: 10, 50, 100 and 300 KB (Figures 4–7, 14, 15).
pub const PAPER_SIZES: [u64; 4] = [10 * 1024, 50 * 1024, 100 * 1024, 300 * 1024];

/// Serializable summary of a method configuration (for CSV headers).
#[derive(Debug, Clone)]
pub struct ConfigSummary {
    /// Platform name.
    pub platform: String,
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Queue depth (polling).
    pub queue_depth: usize,
    /// Batch size (PWW).
    pub batch: usize,
}

impl From<&MethodConfig> for ConfigSummary {
    fn from(c: &MethodConfig) -> Self {
        ConfigSummary {
            platform: c.transport.name(),
            msg_bytes: c.msg_bytes,
            queue_depth: c.queue_depth,
            batch: c.batch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_spaced_covers_range_monotonically() {
        let pts = log_spaced(10, 100_000_000, 4);
        assert_eq!(*pts.first().unwrap(), 10);
        assert_eq!(*pts.last().unwrap(), 100_000_000);
        assert!(
            pts.windows(2).all(|w| w[0] < w[1]),
            "must be strictly increasing"
        );
        // 7 decades x 4 points, plus the endpoint.
        assert!(
            pts.len() >= 25 && pts.len() <= 30,
            "got {} points",
            pts.len()
        );
    }

    #[test]
    fn log_spaced_single_point() {
        assert_eq!(log_spaced(100, 100, 4), vec![100]);
    }

    #[test]
    fn intervals_adapt_to_poll_length() {
        let cfg = MethodConfig::new(Transport::Gm, 100 * 1024);
        assert_eq!(cfg.intervals_for(10), cfg.max_intervals);
        assert_eq!(cfg.intervals_for(100_000_000), cfg.min_intervals);
        assert_eq!(cfg.intervals_for(1_000_000), 8);
    }

    #[test]
    fn lin_spaced_covers_endpoints() {
        let pts = lin_spaced(0, 500_000, 6);
        assert_eq!(pts, vec![0, 100_000, 200_000, 300_000, 400_000, 500_000]);
        assert_eq!(lin_spaced(5, 5, 2), vec![5, 5]);
    }

    #[test]
    fn transports_resolve() {
        assert_eq!(Transport::Gm.name(), "GM");
        assert_eq!(Transport::Portals.name(), "Portals");
        assert_eq!(Transport::Emp.name(), "EMP");
        let custom = Transport::from(HwConfig::gm_myrinet());
        assert_eq!(custom.name(), "GM");
    }
}
