//! The full evaluation: regenerate every figure, write CSVs, render ASCII
//! plots, and run the shape checks. Drives the CLI and the EXPERIMENTS.md
//! record.

use crate::ascii;
use crate::checkpoint::Journal;
use crate::expect::{check_figure, Check};
use crate::figures::{generate, CacheCounts, Campaigns, Fidelity, FigureId, ResumeStats};
use crate::series::Dataset;
use comb_core::{AdaptiveStats, CellCache, CombError};
use comb_trace::Tracer;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Result of regenerating one figure.
pub struct FigureReport {
    /// Which figure.
    pub id: FigureId,
    /// The regenerated data.
    pub dataset: Dataset,
    /// Shape checks against the paper's claims.
    pub checks: Vec<Check>,
    /// Where the CSV was written, if requested.
    pub csv_path: Option<PathBuf>,
    /// Cell-cache activity attributed to this figure (None when the run
    /// had no cache).
    pub cache: Option<CacheCounts>,
}

impl FigureReport {
    /// True if every shape check passed.
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Render the figure as an ASCII plot.
    pub fn plot(&self, width: usize, height: usize) -> String {
        ascii::render(&self.dataset, width, height)
    }

    /// One-line summary: id, pass/fail counts.
    pub fn summary(&self) -> String {
        let passed = self.checks.iter().filter(|c| c.pass).count();
        format!(
            "{}  [{}/{} checks]  {}",
            self.id,
            passed,
            self.checks.len(),
            self.id.title()
        )
    }
}

/// Regenerate the given figures at the given fidelity, optionally writing
/// CSVs to `out_dir`. Sweeps are shared across figures and all their
/// points are executed up front through the shared worker pool
/// ([`Fidelity::jobs`], `0` = auto).
pub fn run_figures(
    ids: &[FigureId],
    fidelity: Fidelity,
    out_dir: Option<&Path>,
) -> Result<Vec<FigureReport>, CombError> {
    run_figures_cached(ids, fidelity, out_dir, None)
}

/// [`run_figures`] with an optional content-addressed cell cache: every
/// campaign cell resolves through the cache (results are byte-identical
/// either way) and each report carries its cache tallies.
pub fn run_figures_cached(
    ids: &[FigureId],
    fidelity: Fidelity,
    out_dir: Option<&Path>,
    cache: Option<Arc<CellCache>>,
) -> Result<Vec<FigureReport>, CombError> {
    let mut campaigns = Campaigns::new(fidelity);
    if let Some(c) = cache {
        campaigns.set_cache(c);
    }
    campaigns.prepare(ids).map_err(CombError::from)?;
    render_reports(ids, &mut campaigns, out_dir)
}

/// [`run_figures`] under a checkpoint journal at `checkpoint_path`:
/// finished cells recorded there are restored instead of re-simulated,
/// fresh cells are journaled as they finish, and the exports are
/// byte-identical to an uninterrupted [`run_figures`] run at any job
/// count. Returns the reports plus what the resume pass did.
pub fn run_figures_checkpointed(
    ids: &[FigureId],
    fidelity: Fidelity,
    out_dir: Option<&Path>,
    checkpoint_path: &Path,
) -> Result<(Vec<FigureReport>, ResumeStats), CombError> {
    run_figures_checkpointed_cached(ids, fidelity, out_dir, checkpoint_path, None)
}

/// [`run_figures_checkpointed`] with an optional cell cache. Journal
/// restores bypass the cache entirely; fresh cells resolve through it and
/// are journaled either way, so the checkpoint stays complete.
pub fn run_figures_checkpointed_cached(
    ids: &[FigureId],
    fidelity: Fidelity,
    out_dir: Option<&Path>,
    checkpoint_path: &Path,
    cache: Option<Arc<CellCache>>,
) -> Result<(Vec<FigureReport>, ResumeStats), CombError> {
    let (journal, state) = Journal::open(checkpoint_path, &fidelity)?;
    let mut campaigns = Campaigns::new(fidelity);
    if let Some(c) = cache {
        campaigns.set_cache(c);
    }
    let stats = campaigns.prepare_checkpointed(ids, &journal, &state, None)?;
    let reports = render_reports(ids, &mut campaigns, out_dir)?;
    Ok((reports, stats))
}

/// [`run_figures`] with adaptive replicate sampling
/// ([`Fidelity::adaptive`] must be set): every campaign cell is repeated
/// under seeded perturbation until its CI target is met or the replicate
/// cap stops it, figures plot per-cell means, and CSV exports carry
/// `y_lo,y_hi,n` CI-band columns.
///
/// With `checkpoint_path`, replicates are journaled under
/// replicate-suffixed keys and a rerun resumes the campaign
/// byte-identically; `stop_after` caps fresh replicates for the
/// interrupt/resume tests. `tracer` receives the replicate-level trace
/// events (pass `&Tracer::default()` to discard them).
pub fn run_figures_adaptive(
    ids: &[FigureId],
    fidelity: Fidelity,
    out_dir: Option<&Path>,
    checkpoint_path: Option<&Path>,
    cache: Option<Arc<CellCache>>,
    tracer: &Tracer,
    stop_after: Option<usize>,
) -> Result<(Vec<FigureReport>, AdaptiveStats), CombError> {
    let mut campaigns = Campaigns::new(fidelity);
    if let Some(c) = cache {
        campaigns.set_cache(c);
    }
    let opened = match checkpoint_path {
        Some(path) => Some(Journal::open(path, &fidelity)?),
        None => None,
    };
    let journal = opened.as_ref().map(|(j, s)| (j, s));
    let stats = campaigns.prepare_adaptive(ids, tracer, journal, stop_after)?;
    let reports = render_reports(ids, &mut campaigns, out_dir)?;
    Ok((reports, stats))
}

fn render_reports(
    ids: &[FigureId],
    campaigns: &mut Campaigns,
    out_dir: Option<&Path>,
) -> Result<Vec<FigureReport>, CombError> {
    let mut reports = Vec::with_capacity(ids.len());
    for &id in ids {
        let dataset = generate(id, campaigns).map_err(CombError::from)?;
        let checks = check_figure(id, &dataset);
        let csv_path = match out_dir {
            Some(dir) => Some(
                dataset
                    .write_csv(dir)
                    .map_err(|e| CombError::io(format!("writing {id}.csv"), &e))?,
            ),
            None => None,
        };
        reports.push(FigureReport {
            id,
            dataset,
            checks,
            csv_path,
            cache: campaigns.figure_cache_counts(id),
        });
    }
    Ok(reports)
}

/// Regenerate the whole evaluation (all 14 data figures).
pub fn run_all(fidelity: Fidelity, out_dir: Option<&Path>) -> Result<Vec<FigureReport>, CombError> {
    run_figures(&FigureId::ALL, fidelity, out_dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_figure_report_has_checks_and_csv() {
        let dir = std::env::temp_dir().join("comb_report_experiments_test");
        let reports =
            run_figures(&[FigureId::Fig13], Fidelity::quick(), Some(&dir)).expect("fig13 runs");
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert!(!r.checks.is_empty());
        assert!(r.all_pass(), "{:#?}", r.checks);
        assert!(r.csv_path.as_ref().unwrap().exists());
        assert!(r.summary().contains("fig13"));
        assert!(r.plot(60, 14).contains("Work Only"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Render a markdown record of the given figure reports — the
/// machine-generated companion to EXPERIMENTS.md.
pub fn markdown_report(reports: &[FigureReport]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let total: usize = reports.iter().map(|r| r.checks.len()).sum();
    let passed: usize = reports
        .iter()
        .map(|r| r.checks.iter().filter(|c| c.pass).count())
        .sum();
    let _ = writeln!(out, "# COMB evaluation record\n");
    let _ = writeln!(
        out,
        "{passed}/{total} shape checks passed across {} figures.\n",
        reports.len()
    );
    for r in reports {
        let _ = writeln!(out, "## {} — {}\n", r.id, r.id.title());
        let _ = writeln!(out, "{}\n", r.id.description());
        let _ = writeln!(out, "| check | result | evidence |");
        let _ = writeln!(out, "|---|---|---|");
        for c in &r.checks {
            let _ = writeln!(
                out,
                "| {} | {} | {} |",
                c.name,
                if c.pass { "PASS" } else { "**FAIL**" },
                c.detail
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "Series maxima:");
        for s in &r.dataset.series {
            let _ = writeln!(out, "* {}: max y = {:.3}", s.label, s.y_max());
        }
        if let Some(c) = &r.cache {
            let _ = writeln!(
                out,
                "\nCell cache: {} hits, {} misses, {} joined in-flight",
                c.hits, c.misses, c.joined
            );
        }
        if let Some(p) = &r.csv_path {
            let _ = writeln!(out, "\nData: `{}`", p.display());
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod markdown_tests {
    use super::*;

    #[test]
    fn markdown_report_includes_all_sections() {
        let reports = run_figures(&[FigureId::Fig13], Fidelity::quick(), None).expect("fig13 runs");
        let md = markdown_report(&reports);
        assert!(md.contains("# COMB evaluation record"));
        assert!(md.contains("## fig13"));
        assert!(md.contains("| check | result |"));
        assert!(md.contains("PASS"));
        assert!(md.contains("Work with MH"));
    }
}
