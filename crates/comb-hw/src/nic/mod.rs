//! Network interface models.
//!
//! The [`Nic`] trait is the boundary between the message-passing library and
//! the simulated hardware. Two personalities implement it:
//!
//! * [`BypassNic`](bypass::BypassNic) — GM-like OS-bypass: user-level DMA,
//!   zero host involvement per packet, received messages parked in a ring
//!   the library drains during MPI calls (pull), except `Direct`-class
//!   messages (matched rendezvous data) which land straight in user memory.
//! * [`KernelNic`](kernel::KernelNic) — Portals-like: every received packet
//!   raises an interrupt, the ISR copies data to user space and performs
//!   matching, and completed messages are *pushed* to the library with no
//!   library call required (application offload).

pub mod bypass;
pub mod kernel;

use crate::config::NicKind;
use comb_sim::{SimDuration, SimTime};
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide count of packets whose wire delivery rode a batched burst
/// event instead of an event of their own (all NICs, all simulations).
static G_BURST_BATCHED: AtomicU64 = AtomicU64::new(0);

pub(crate) fn note_burst_batched(packets: u64) {
    G_BURST_BATCHED.fetch_add(packets, Ordering::Relaxed);
}

/// Total packets, process-wide, delivered via batched burst events (see
/// [`NicStats::burst_batched_packets`] for the per-NIC figure). Used by the
/// benchmark harness to report how much event-queue traffic the batching
/// fast path eliminated.
pub fn burst_batched_packets_total() -> u64 {
    G_BURST_BATCHED.load(Ordering::Relaxed)
}

/// Identifies a node (and its NIC) within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// How a fully received message reaches the library on a bypass NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryClass {
    /// Parked in the NIC receive ring until the library polls (eager data
    /// and protocol control messages on library-progress transports).
    Ring,
    /// Delivered immediately on arrival with no host cost (DMA into a
    /// pre-matched user buffer: rendezvous payload).
    Direct,
}

/// A message travelling the wire. The payload is opaque to the hardware —
/// the MPI layer stores its protocol structures in it.
pub struct WireMsg {
    /// Payload size in bytes (drives transfer timing).
    pub bytes: u64,
    /// Delivery semantics on a bypass NIC (ignored by the kernel NIC,
    /// which always pushes after ISR processing).
    pub class: DeliveryClass,
    /// Expedited messages (single-packet protocol control: RTS/CTS) are
    /// interleaved between bulk packets instead of queueing behind them —
    /// they skip the FIFO stations and only pay their own service time.
    pub expedited: bool,
    /// Opaque protocol payload.
    pub payload: Box<dyn Any + Send>,
}

impl std::fmt::Debug for WireMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireMsg")
            .field("bytes", &self.bytes)
            .field("class", &self.class)
            .finish_non_exhaustive()
    }
}

/// One packet in flight. Only the last packet of a message carries the
/// message body; earlier packets exist purely for timing (and interrupts).
pub struct Packet {
    /// Payload bytes in this packet.
    pub bytes: u64,
    /// True for expedited (control) packets; they bypass station queues.
    pub expedited: bool,
    /// True for the first packet of a message (kernel NICs charge
    /// per-message matching on it).
    pub first: bool,
    /// The message, present on the final packet only.
    pub tail: Option<WireMsg>,
}

/// Upcall invoked when a NIC delivers a complete message to the library.
pub type RxHandler = Arc<dyn Fn(NodeId, WireMsg) + Send + Sync>;

/// One-shot callback fired at local transmit completion (last byte left the
/// NIC). MPI send requests complete locally on this.
pub type TxDone = Box<dyn FnOnce() + Send>;

/// Cumulative NIC counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Messages submitted for transmission.
    pub msgs_tx: u64,
    /// Messages fully received and delivered (or parked in the ring).
    pub msgs_rx: u64,
    /// Packets transmitted.
    pub packets_tx: u64,
    /// Packets received.
    pub packets_rx: u64,
    /// Payload bytes transmitted.
    pub bytes_tx: u64,
    /// Payload bytes received.
    pub bytes_rx: u64,
    /// Interrupts raised (kernel NIC only).
    pub interrupts: u64,
    /// Host CPU time stolen by this NIC (kernel NIC only).
    pub host_stolen: SimDuration,
    /// Packets that needed link-level retransmission.
    pub lost_packets: u64,
    /// Total retransmission attempts.
    pub retransmissions: u64,
    /// Rendezvous control messages dropped by fault injection.
    pub ctl_dropped: u64,
    /// Spurious interrupts raised by fault-injected storms (kernel NIC
    /// only; included in `interrupts` as well).
    pub storm_interrupts: u64,
    /// Packets this NIC transmitted whose delivery rode a single batched
    /// burst event instead of one simulator event per packet (bypass NIC
    /// only; timing and traces are identical either way).
    pub burst_batched_packets: u64,
}

/// A simulated network interface.
pub trait Nic: Send + Sync {
    /// The node this NIC belongs to.
    fn node_id(&self) -> NodeId;

    /// Transport personality.
    fn kind(&self) -> NicKind;

    /// Submit a message for transmission. `on_tx_done` fires at local
    /// completion. Must be called from simulation context (process or
    /// event); timing starts at the current virtual time.
    fn submit(&self, dst: NodeId, msg: WireMsg, on_tx_done: TxDone);

    /// Install the delivery upcall. Must be called once, before traffic.
    fn set_rx_handler(&self, handler: RxHandler);

    /// Install a hook invoked whenever a message is parked in the receive
    /// ring. The library uses it to wake blocked waiters so they re-enter
    /// progress at the arrival instant (a real implementation busy-waits and
    /// observes the ring at spin granularity; waking exactly at arrival is
    /// the deterministic equivalent). No host time is charged by the hook
    /// itself. Kernel NICs, which have no ring, never invoke it.
    fn set_ring_notify(&self, notify: Arc<dyn Fn() + Send + Sync>);

    /// Pull one parked message from the receive ring, if any. Only the
    /// bypass NIC ever returns messages here.
    fn poll_ring(&self) -> Option<(NodeId, WireMsg)>;

    /// Number of messages parked in the receive ring.
    fn ring_len(&self) -> usize;

    /// Cumulative counters.
    fn stats(&self) -> NicStats;

    /// Hardware-side packet ingress; called by the fabric. Not for library
    /// use.
    #[doc(hidden)]
    fn deliver_packet(&self, src: NodeId, pkt: Packet);

    /// Hardware-side ingress for a whole message's packet train, carried by
    /// one simulator event firing at the last packet's arrival. `arrivals`
    /// lists `(arrival, bytes)` per packet in wire order; `msg` rode the
    /// final packet. Implementations must produce timing identical to
    /// receiving each packet on its own event — the bypass NIC replays its
    /// delivery-station arithmetic at the recorded arrival instants. The
    /// default simply unrolls into [`Nic::deliver_packet`] calls, which is
    /// only correct for NICs whose receive path does not read the clock;
    /// the fabric only routes bursts to NICs that opted in by batching at
    /// transmit time.
    #[doc(hidden)]
    fn deliver_burst(&self, src: NodeId, arrivals: Vec<(SimTime, u64)>, msg: WireMsg) {
        let n = arrivals.len();
        let mut msg = Some(msg);
        for (i, (_arrival, bytes)) in arrivals.into_iter().enumerate() {
            self.deliver_packet(
                src,
                Packet {
                    bytes,
                    expedited: false,
                    first: i == 0,
                    tail: if i + 1 == n { msg.take() } else { None },
                },
            );
        }
    }
}
