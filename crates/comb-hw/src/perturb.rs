//! Seeded run-to-run perturbation for replicate campaigns.
//!
//! A deterministic simulator answers every question with exactly one
//! number, which makes confidence intervals vacuous: re-running a sweep
//! cell reproduces the same bits. Real machines do not behave that way —
//! ISR costs, DMA rates, and wire latency drift run to run, and background
//! activity steals cycles at random. A [`PerturbPlan`] reintroduces that
//! variability *deterministically*: replicate `r` of a cell runs on a
//! hardware configuration whose timing parameters are jittered by factors
//! drawn from a stream derived purely from `(perturb seed, r)`, plus a
//! seeded background-noise process ([`crate::fault::NoiseSpec`]) on the
//! link. Every replicate is thus fully reproducible — same `(base config,
//! plan, r)` in, same bits out — which is what lets adaptive campaigns
//! keep the repo's byte-identity and caching guarantees while still
//! having a genuine run-to-run distribution to estimate.
//!
//! Replicate `0` is the identity: the unperturbed configuration, byte for
//! byte, so a single-replicate campaign reproduces the legacy single-shot
//! numbers exactly.

use crate::config::HwConfig;
use crate::fault::{stream_seed, DetRng, NoiseSpec};
use comb_sim::SimDuration;

/// Stream tag for per-replicate perturbation streams, disjoint from the
/// fault-source tags in [`crate::fault`] so arming perturbation can never
/// shift a fault stream.
const TAG_REPLICATE: u64 = 5;

/// Default perturbation seed (any fixed value works; this one is baked
/// into golden files, so changing it re-blesses them).
pub const DEFAULT_PERTURB_SEED: u64 = 0x0ADA_0C0B_55ED;

/// The replicate perturbation model: how much to jitter the deterministic
/// timing parameters and how much background noise to inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbPlan {
    /// Root seed; every replicate's stream derives from `(seed, r)`.
    pub seed: u64,
    /// Half-width of the multiplicative jitter band: each jittered
    /// parameter is scaled by an independent factor uniform in
    /// `[1 - jitter, 1 + jitter]`. In [0, 1).
    pub jitter: f64,
    /// Per-packet probability of a background-noise event, in [0, 1).
    pub noise_rate: f64,
    /// Extra transmit delay per noise event.
    pub noise_cost: SimDuration,
}

impl Default for PerturbPlan {
    fn default() -> Self {
        PerturbPlan::new(DEFAULT_PERTURB_SEED)
    }
}

impl PerturbPlan {
    /// The standard model with a caller-chosen seed: ±5% timing jitter
    /// and a 1% / 20 µs background-noise process — enough run-to-run
    /// spread for interval estimation without drowning the platform
    /// signal the figures exist to show.
    pub fn new(seed: u64) -> PerturbPlan {
        PerturbPlan {
            seed,
            jitter: 0.05,
            noise_rate: 0.01,
            noise_cost: SimDuration::from_micros(20),
        }
    }

    /// The hardware configuration replicate `replicate` runs on.
    ///
    /// Replicate `0` returns `base` unchanged (the identity replicate).
    /// For `r > 0`, independent factors drawn from the `(seed, r)` stream
    /// jitter the NIC's per-packet costs (ISR / firmware / kernel path),
    /// its DMA bandwidths, and the wire latency — always in the same
    /// order, so a replicate's configuration is a pure function of
    /// `(base, plan, r)` — and a seeded [`NoiseSpec`] is installed on the
    /// link. The perturbed config renders differently under `{:?}`, which
    /// is what gives every replicate its own content-addressed cache key.
    pub fn hw_for_replicate(&self, base: &HwConfig, replicate: u32) -> HwConfig {
        let mut hw = base.clone();
        if replicate == 0 {
            return hw;
        }
        let mut rng = DetRng::new(stream_seed(self.seed, replicate as u64, TAG_REPLICATE));
        let factor = |rng: &mut DetRng| 1.0 + self.jitter * (2.0 * rng.next_f64() - 1.0);
        // Fixed draw order: ISR/host costs, DMA bandwidths, wire latency.
        hw.nic.tx_per_packet = jitter_duration(hw.nic.tx_per_packet, factor(&mut rng));
        hw.nic.rx_per_packet = jitter_duration(hw.nic.rx_per_packet, factor(&mut rng));
        hw.nic.tx_host_per_packet = jitter_duration(hw.nic.tx_host_per_packet, factor(&mut rng));
        hw.nic.rx_match_cost = jitter_duration(hw.nic.rx_match_cost, factor(&mut rng));
        hw.nic.tx_bandwidth = jitter_u64(hw.nic.tx_bandwidth, factor(&mut rng));
        hw.nic.rx_bandwidth = jitter_u64(hw.nic.rx_bandwidth, factor(&mut rng));
        hw.link.latency = jitter_duration(hw.link.latency, factor(&mut rng));
        if self.noise_rate > 0.0 {
            hw.link.fault.noise = Some(NoiseSpec {
                rate: self.noise_rate,
                cost: self.noise_cost,
                seed: Some(rng.next_u64()),
            });
        }
        hw
    }
}

fn jitter_duration(d: SimDuration, factor: f64) -> SimDuration {
    SimDuration::from_nanos((d.as_nanos() as f64 * factor).round() as u64)
}

fn jitter_u64(v: u64, factor: f64) -> u64 {
    (v as f64 * factor).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicate_zero_is_the_identity() {
        let plan = PerturbPlan::default();
        for base in [HwConfig::gm_myrinet(), HwConfig::portals_myrinet()] {
            assert_eq!(plan.hw_for_replicate(&base, 0), base);
        }
    }

    #[test]
    fn replicates_are_deterministic_and_distinct() {
        let plan = PerturbPlan::new(42);
        let base = HwConfig::gm_myrinet();
        let r1 = plan.hw_for_replicate(&base, 1);
        let r2 = plan.hw_for_replicate(&base, 2);
        assert_eq!(r1, plan.hw_for_replicate(&base, 1), "pure in (plan, r)");
        assert_ne!(r1, base, "replicate 1 must differ from the base");
        assert_ne!(r1, r2, "replicates must decorrelate");
        // Distinct Debug renderings are the cache-key premise: the
        // content-addressed cell key hashes `hw={:?}`.
        assert_ne!(format!("{r1:?}"), format!("{r2:?}"));
        // A different seed gives a different family.
        let other = PerturbPlan::new(43).hw_for_replicate(&base, 1);
        assert_ne!(other, r1, "seeds must decorrelate");
    }

    #[test]
    fn jitter_stays_inside_the_band() {
        let plan = PerturbPlan::new(7);
        let base = HwConfig::portals_myrinet();
        for r in 1..100u32 {
            let hw = plan.hw_for_replicate(&base, r);
            let check = |got: u64, base: u64, what: &str| {
                let lo = base as f64 * (1.0 - plan.jitter) - 1.0;
                let hi = base as f64 * (1.0 + plan.jitter) + 1.0;
                assert!(
                    (lo..=hi).contains(&(got as f64)),
                    "replicate {r}: {what} {got} outside [{lo}, {hi}]"
                );
            };
            check(
                hw.nic.tx_per_packet.as_nanos(),
                base.nic.tx_per_packet.as_nanos(),
                "tx_per_packet",
            );
            check(
                hw.nic.rx_per_packet.as_nanos(),
                base.nic.rx_per_packet.as_nanos(),
                "rx_per_packet",
            );
            check(hw.nic.tx_bandwidth, base.nic.tx_bandwidth, "tx_bandwidth");
            check(hw.nic.rx_bandwidth, base.nic.rx_bandwidth, "rx_bandwidth");
            check(
                hw.link.latency.as_nanos(),
                base.link.latency.as_nanos(),
                "latency",
            );
        }
    }

    #[test]
    fn noise_is_installed_per_replicate_with_distinct_seeds() {
        let plan = PerturbPlan::new(9);
        let base = HwConfig::gm_myrinet();
        let n1 = plan.hw_for_replicate(&base, 1).link.fault.noise.unwrap();
        let n2 = plan.hw_for_replicate(&base, 2).link.fault.noise.unwrap();
        assert_eq!(n1.rate, plan.noise_rate);
        assert_eq!(n1.cost, plan.noise_cost);
        assert!(n1.seed.is_some());
        assert_ne!(n1.seed, n2.seed, "noise streams must decorrelate");
        // Zero noise rate installs nothing — the fault plan stays inert.
        let quiet = PerturbPlan {
            noise_rate: 0.0,
            ..plan
        };
        let hw = quiet.hw_for_replicate(&base, 1);
        assert!(hw.link.fault.noise.is_none());
        assert!(hw.link.fault.is_none());
    }

    #[test]
    fn perturbation_preserves_other_fault_sources() {
        use crate::fault::FaultPlan;
        let mut base = HwConfig::gm_myrinet();
        let fp = FaultPlan::from_specs(&["loss=uniform:0.01", "dropctl=0.05"], Some(3)).unwrap();
        fp.apply_to(&mut base);
        let hw = PerturbPlan::new(5).hw_for_replicate(&base, 2);
        assert_eq!(hw.link.fault.loss, base.link.fault.loss);
        assert_eq!(hw.link.fault.drop_ctl, base.link.fault.drop_ctl);
        assert_eq!(hw.link.fault.seed, base.link.fault.seed);
        assert!(hw.link.fault.noise.is_some());
    }
}
