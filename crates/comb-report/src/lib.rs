//! # comb-report — figure regeneration, CSV output, ASCII plots and shape
//! checks for the COMB reproduction
//!
//! Maps every data figure of the paper's evaluation (Figures 4–17) to the
//! sweeps that regenerate it on the simulated platforms, renders the result
//! (CSV + terminal plot), and checks the paper's qualitative claims against
//! the regenerated data ([`expect`]).
//!
//! ```no_run
//! use comb_report::{run_figures, Fidelity, FigureId};
//!
//! let reports = run_figures(&[FigureId::Fig11], Fidelity::quick(), None).unwrap();
//! println!("{}", reports[0].plot(72, 20));
//! assert!(reports[0].all_pass());
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod ascii;
pub mod checkpoint;
pub mod degradation;
pub mod expect;
pub mod experiments;
pub mod figures;
pub mod series;
pub mod soak;
pub mod sweeptext;
pub mod timeline;

pub use checkpoint::{CheckpointState, Journal, PointSample};
pub use degradation::{generate_degradation, DEGRADATION_IDS};
pub use expect::{check_figure, Check};
pub use experiments::{
    markdown_report, run_all, run_figures, run_figures_adaptive, run_figures_cached,
    run_figures_checkpointed, run_figures_checkpointed_cached, FigureReport,
};
pub use figures::{
    generate, generate_all, required_campaigns, CacheCounts, CampaignKey, Campaigns, Fidelity,
    FigureId, ResumeStats,
};
pub use series::{CiBand, Dataset, Point, Series};
pub use soak::{run_soak, SoakConfig, SoakReport};
pub use sweeptext::{render_polling_sweep, render_pww_sweep};
pub use timeline::{render_pww_timeline, render_traced_run};
