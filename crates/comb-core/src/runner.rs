//! Orchestration: build a two-node cluster, run one benchmark point on it,
//! collect the sample.
//!
//! Every point runs in a fresh simulation (fresh cluster, fresh MPI world),
//! exactly as the paper restarts the benchmark per configuration; points are
//! therefore independent and individually deterministic. That independence
//! is what [`pool`] exploits: sweeps fan their points out over a bounded
//! worker pool and reassemble the samples in input order, so a parallel
//! sweep is byte-identical to a serial one.

pub mod pool;

use crate::metrics::{FaultCounters, PollingSample, PwwSample};
use crate::polling::{self, PollingParams};
use crate::pww::{self, InterleavedParams, PwwParams};
use crate::sweep::MethodConfig;
use comb_hw::{Cluster, HwConfig, NodeId};
use comb_mpi::{MpiWorld, Rank};
use comb_sim::{SimError, Simulation};
use std::fmt;

/// Errors from running a benchmark point.
#[derive(Debug)]
pub enum RunError {
    /// The underlying simulation failed (deadlock, panic, event limit).
    Sim(SimError),
    /// The worker finished without producing a sample (a harness bug).
    NoResult,
    /// A sweep worker thread panicked outside the simulation.
    WorkerPanic {
        /// The panic message.
        message: String,
    },
    /// The kernel watchdog aborted the point (livelock or virtual-time
    /// deadline overrun).
    Watchdog {
        /// The watchdog [`SimError`] that fired.
        error: SimError,
        /// Extra context — traced runs attach the last trace events
        /// leading up to the abort; empty otherwise.
        diagnostic: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "simulation error: {e}"),
            RunError::NoResult => write!(f, "worker produced no sample"),
            RunError::WorkerPanic { message } => {
                write!(f, "sweep worker panicked: {message}")
            }
            RunError::Watchdog { error, diagnostic } => {
                write!(f, "{error}")?;
                if !diagnostic.is_empty() {
                    write!(f, "\n{diagnostic}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RunError {}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        if e.is_watchdog() {
            RunError::Watchdog {
                error: e,
                diagnostic: String::new(),
            }
        } else {
            RunError::Sim(e)
        }
    }
}

/// Drive a built simulation to completion, under the configuration's
/// watchdog when one is set. Both the plain and traced runners go through
/// here so watchdog semantics cannot drift between them.
pub(crate) fn drive(sim: &mut Simulation, cfg: &MethodConfig) -> Result<(), RunError> {
    match &cfg.watchdog {
        Some(wd) => sim.run_with_watchdog(wd)?,
        None => sim.run()?,
    };
    Ok(())
}

/// Sum the fault-injection activity of every NIC and every rank after a
/// run; the sample carries it so faulted campaigns can report recovery
/// behaviour alongside bandwidth and availability.
pub(crate) fn collect_faults(cluster: &Cluster, world: &MpiWorld) -> FaultCounters {
    let mut f = FaultCounters::default();
    for node in &cluster.nodes {
        let s = node.nic.stats();
        f.lost_packets += s.lost_packets;
        f.retransmissions += s.retransmissions;
        f.ctl_dropped += s.ctl_dropped;
        f.storm_interrupts += s.storm_interrupts;
    }
    for r in 0..world.size() {
        f.rndv_retries += world.proc(Rank(r)).stats().rndv_retries;
    }
    f
}

/// Run one polling-method point at the given poll interval (in loop
/// iterations).
pub fn run_polling_point(
    cfg: &MethodConfig,
    poll_interval: u64,
) -> Result<PollingSample, RunError> {
    run_polling_point_on(&cfg.resolved_hw(), cfg, poll_interval)
}

/// [`run_polling_point`] with the transport already resolved; sweeps use
/// this so the hardware description is built once, not per point.
pub fn run_polling_point_on(
    hw: &HwConfig,
    cfg: &MethodConfig,
    poll_interval: u64,
) -> Result<PollingSample, RunError> {
    let params = PollingParams {
        msg_bytes: cfg.msg_bytes,
        queue_depth: cfg.queue_depth,
        poll_interval: poll_interval.max(1),
        intervals: cfg.intervals_for(poll_interval),
    };
    let mut sim = Simulation::new();
    let cluster = Cluster::build(&sim.handle(), hw, 2);
    let world = MpiWorld::attach(&sim.handle(), &cluster);
    let probe = sim.probe::<PollingSample>();

    let (m0, cpu0, p0, pr) = (
        world.proc(Rank(0)),
        cluster.node(NodeId(0)).cpu.clone(),
        params,
        probe.clone(),
    );
    sim.spawn("worker", move |ctx| {
        pr.set(polling::worker(ctx, &m0, &cpu0, &p0));
        m0.finalize();
    });
    let (m1, p1) = (world.proc(Rank(1)), params);
    sim.spawn("support", move |ctx| {
        polling::support(ctx, &m1, &p1);
        m1.finalize();
    });

    drive(&mut sim, cfg)?;
    let mut sample = probe.take().ok_or(RunError::NoResult)?;
    sample.faults = collect_faults(&cluster, &world);
    Ok(sample)
}

/// Run one PWW-method point at the given work interval (in loop
/// iterations). `test_in_work` selects the paper's Section 4.3 modified
/// variant with one `MPI_Test` inside the work phase.
pub fn run_pww_point(
    cfg: &MethodConfig,
    work_interval: u64,
    test_in_work: bool,
) -> Result<PwwSample, RunError> {
    run_pww_point_on(&cfg.resolved_hw(), cfg, work_interval, test_in_work)
}

/// [`run_pww_point`] with the transport already resolved; sweeps use this
/// so the hardware description is built once, not per point.
pub fn run_pww_point_on(
    hw: &HwConfig,
    cfg: &MethodConfig,
    work_interval: u64,
    test_in_work: bool,
) -> Result<PwwSample, RunError> {
    let params = PwwParams {
        msg_bytes: cfg.msg_bytes,
        batch: cfg.batch,
        cycles: cfg.cycles,
        work_interval: work_interval.max(1),
        test_in_work,
    };
    let mut sim = Simulation::new();
    let cluster = Cluster::build(&sim.handle(), hw, 2);
    let world = MpiWorld::attach(&sim.handle(), &cluster);
    let probe = sim.probe::<PwwSample>();

    let (m0, cpu0, p0, pr) = (
        world.proc(Rank(0)),
        cluster.node(NodeId(0)).cpu.clone(),
        params,
        probe.clone(),
    );
    sim.spawn("worker", move |ctx| {
        pr.set(pww::worker(ctx, &m0, &cpu0, &p0));
        m0.finalize();
    });
    let (m1, p1) = (world.proc(Rank(1)), params);
    sim.spawn("support", move |ctx| {
        pww::support(ctx, &m1, &p1);
        m1.finalize();
    });

    drive(&mut sim, cfg)?;
    let mut sample = probe.take().ok_or(RunError::NoResult)?;
    sample.faults = collect_faults(&cluster, &world);
    Ok(sample)
}

/// Run one *interleaved* PWW point (paper Section 4.3's historical
/// variant) with `interleave` batches kept in flight.
pub fn run_pww_interleaved(
    cfg: &MethodConfig,
    work_interval: u64,
    interleave: usize,
) -> Result<PwwSample, RunError> {
    let params = InterleavedParams {
        base: PwwParams {
            msg_bytes: cfg.msg_bytes,
            batch: cfg.batch,
            cycles: cfg.cycles,
            work_interval: work_interval.max(1),
            test_in_work: false,
        },
        interleave,
    };
    let hw = cfg.resolved_hw();
    let mut sim = Simulation::new();
    let cluster = Cluster::build(&sim.handle(), &hw, 2);
    let world = MpiWorld::attach(&sim.handle(), &cluster);
    let probe = sim.probe::<PwwSample>();

    let (m0, cpu0, p0, pr) = (
        world.proc(Rank(0)),
        cluster.node(NodeId(0)).cpu.clone(),
        params,
        probe.clone(),
    );
    sim.spawn("worker", move |ctx| {
        pr.set(pww::worker_interleaved(ctx, &m0, &cpu0, &p0));
        m0.finalize();
    });
    let (m1, p1) = (world.proc(Rank(1)), params);
    sim.spawn("support", move |ctx| {
        pww::support_interleaved(ctx, &m1, &p1);
        m1.finalize();
    });

    drive(&mut sim, cfg)?;
    let mut sample = probe.take().ok_or(RunError::NoResult)?;
    sample.faults = collect_faults(&cluster, &world);
    Ok(sample)
}

/// Run a polling sweep over the given poll intervals, on
/// [`MethodConfig::jobs`] workers (`0` = auto). Results are in input
/// order and byte-identical to a serial sweep.
pub fn polling_sweep(
    cfg: &MethodConfig,
    intervals: &[u64],
) -> Result<Vec<PollingSample>, RunError> {
    polling_sweep_parallel(cfg, intervals, cfg.jobs)
}

/// [`polling_sweep`] with an explicit worker count overriding
/// [`MethodConfig::jobs`].
pub fn polling_sweep_parallel(
    cfg: &MethodConfig,
    intervals: &[u64],
    jobs: usize,
) -> Result<Vec<PollingSample>, RunError> {
    let hw = cfg.resolved_hw();
    pool::run_ordered(jobs, intervals, |&p| run_polling_point_on(&hw, cfg, p))
}

/// Run a PWW sweep over the given work intervals, on
/// [`MethodConfig::jobs`] workers (`0` = auto). Results are in input
/// order and byte-identical to a serial sweep.
pub fn pww_sweep(
    cfg: &MethodConfig,
    intervals: &[u64],
    test_in_work: bool,
) -> Result<Vec<PwwSample>, RunError> {
    pww_sweep_parallel(cfg, intervals, test_in_work, cfg.jobs)
}

/// [`pww_sweep`] with an explicit worker count overriding
/// [`MethodConfig::jobs`].
pub fn pww_sweep_parallel(
    cfg: &MethodConfig,
    intervals: &[u64],
    test_in_work: bool,
    jobs: usize,
) -> Result<Vec<PwwSample>, RunError> {
    let hw = cfg.resolved_hw();
    pool::run_ordered(jobs, intervals, |&w| {
        run_pww_point_on(&hw, cfg, w, test_in_work)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Transport;

    #[test]
    fn points_are_deterministic_across_runs() {
        let mut cfg = MethodConfig::new(Transport::Portals, 50 * 1024);
        cfg.target_iters = 500_000;
        cfg.max_intervals = 500;
        let a = run_polling_point(&cfg, 20_000).unwrap();
        let b = run_polling_point(&cfg, 20_000).unwrap();
        assert_eq!(a, b);
        let c = run_pww_point(&cfg, 200_000, false).unwrap();
        let d = run_pww_point(&cfg, 200_000, false).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn sweep_preserves_point_order_and_length() {
        let mut cfg = MethodConfig::new(Transport::Gm, 10 * 1024);
        cfg.target_iters = 200_000;
        cfg.max_intervals = 300;
        cfg.cycles = 3;
        let intervals = [1_000u64, 10_000, 100_000];
        let ps = polling_sweep(&cfg, &intervals).unwrap();
        assert_eq!(ps.len(), 3);
        for (s, &i) in ps.iter().zip(&intervals) {
            assert_eq!(s.poll_interval, i);
        }
        let ws = pww_sweep(&cfg, &intervals, false).unwrap();
        assert_eq!(ws.len(), 3);
    }

    #[test]
    fn parallel_sweeps_equal_serial_sweeps() {
        let mut cfg = MethodConfig::new(Transport::Portals, 30 * 1024);
        cfg.target_iters = 200_000;
        cfg.max_intervals = 300;
        cfg.cycles = 2;
        cfg.jobs = 1;
        let intervals = [500u64, 5_000, 50_000, 500_000, 5_000_000];
        let serial_poll = polling_sweep(&cfg, &intervals).unwrap();
        let serial_pww = pww_sweep(&cfg, &intervals, false).unwrap();
        for jobs in [1, 4, pool::available_jobs()] {
            assert_eq!(
                polling_sweep_parallel(&cfg, &intervals, jobs).unwrap(),
                serial_poll,
                "polling sweep differs at jobs={jobs}"
            );
            assert_eq!(
                pww_sweep_parallel(&cfg, &intervals, false, jobs).unwrap(),
                serial_pww,
                "pww sweep differs at jobs={jobs}"
            );
        }
    }

    #[test]
    fn faulted_polling_with_dropped_control_messages_terminates() {
        // Regression: the polling worker fire-and-forgets its final sends,
        // so rendezvous handshakes can be mid-flight when both processes
        // exit. With `dropctl` arming the retry protocol, the abandoned
        // RTS timers re-armed forever and the simulation never drained
        // until the engines cancelled them at exit (`finalize`).
        let mut cfg = MethodConfig::new(Transport::Gm, 100 * 1024);
        cfg.target_iters = 200_000;
        cfg.max_intervals = 300;
        cfg.fault = comb_hw::FaultPlan::from_specs(&["dropctl=0.3"], Some(3)).unwrap();
        let s = run_polling_point(&cfg, 1_000).unwrap();
        assert!(s.messages_received > 0);
        assert!(
            s.faults.ctl_dropped > 0,
            "the plan must actually drop control messages"
        );
    }

    #[test]
    fn resolved_config_matches_per_point_resolution() {
        let mut cfg = MethodConfig::new(Transport::Gm, 10 * 1024);
        cfg.target_iters = 200_000;
        cfg.max_intervals = 300;
        let hw = cfg.transport.config();
        assert_eq!(
            run_polling_point_on(&hw, &cfg, 10_000).unwrap(),
            run_polling_point(&cfg, 10_000).unwrap()
        );
    }
}
