//! Cost of the observability subsystem.
//!
//! Two questions, benchmarked separately:
//!
//! 1. `pww_point/untraced` vs `pww_point/traced` — what a full traced run
//!    costs over a plain one. The acceptance bar is on the *disabled* path,
//!    but the enabled cost is worth watching too.
//! 2. `emit/disabled` — the per-call cost of a tracing hook when tracing is
//!    off. This is the price every simulated message pays in ordinary runs,
//!    so it must stay at "one relaxed atomic load": the event closure must
//!    not even be evaluated.

use comb_bench::bench_config;
use comb_core::{run_pww_point, run_pww_point_traced, Transport};
use comb_sim::SimTime;
use comb_trace::{Comp, TraceEvent, Tracer};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_traced_vs_untraced(c: &mut Criterion) {
    let mut group = c.benchmark_group("pww_point");
    group.sample_size(20);
    let cfg = bench_config(Transport::Gm, 100 * 1024);
    group.bench_function("untraced", |b| {
        b.iter(|| black_box(run_pww_point(&cfg, 500_000, false).unwrap()))
    });
    group.bench_function("traced", |b| {
        b.iter(|| black_box(run_pww_point_traced(&cfg, 500_000, false).unwrap()))
    });
    group.finish();
}

fn bench_emit(c: &mut Criterion) {
    const EMITS: u64 = 1000;
    let mut group = c.benchmark_group("emit_1000");
    group.sample_size(200);
    group.throughput(Throughput::Elements(EMITS));
    let t0 = SimTime::ZERO;
    let off = Tracer::new();
    group.bench_function("disabled", |b| {
        b.iter(|| {
            for _ in 0..EMITS {
                off.emit(black_box(t0), Comp::Mpi(0), || TraceEvent::Custom("bench"));
            }
        })
    });
    // A fresh tracer each iteration keeps the record buffer small; its
    // allocation is amortised over the thousand emits.
    group.bench_function("enabled", |b| {
        b.iter(|| {
            let on = Tracer::enabled();
            for _ in 0..EMITS {
                on.emit(black_box(t0), Comp::Mpi(0), || TraceEvent::Custom("bench"));
            }
            black_box(&on);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_traced_vs_untraced, bench_emit);
criterion_main!(benches);
