//! Trace analysis: per-phase time breakdown, per-message latency
//! percentiles, and overlap efficiency.
//!
//! Overlap efficiency answers the paper's core question quantitatively:
//! of the payload bytes that moved, what fraction moved *while the host
//! CPU was doing application work* (inside `work`/`poll` phase spans)?
//! A transport that truly overlaps scores near 1.0; one that makes the
//! host push bytes during `wait` scores near 0.0.

use crate::event::{Phase, TraceEvent, TraceRecord};
use crate::span::build_spans;
use comb_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Total time and occurrence count for one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTotal {
    /// The phase.
    pub phase: Phase,
    /// Summed span time across all cycles and ranks.
    pub total: SimDuration,
    /// Number of spans.
    pub count: u64,
}

/// Order-statistic summary of a latency population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyStats {
    /// Population size.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: SimDuration,
    /// Median (nearest-rank).
    pub p50: SimDuration,
    /// 95th percentile (nearest-rank).
    pub p95: SimDuration,
    /// 99th percentile (nearest-rank).
    pub p99: SimDuration,
    /// Maximum.
    pub max: SimDuration,
}

impl LatencyStats {
    /// Summarise a set of latencies (order irrelevant).
    pub fn from_latencies(mut ns: Vec<u64>) -> Self {
        if ns.is_empty() {
            return Self::default();
        }
        ns.sort_unstable();
        let n = ns.len() as u64;
        let sum: u64 = ns.iter().sum();
        let pick = |q: u64| -> SimDuration {
            // Nearest-rank percentile: ceil(q/100 * n) - 1, clamped.
            let idx = ((q * n).div_ceil(100)).max(1) - 1;
            SimDuration::from_nanos(ns[idx as usize])
        };
        LatencyStats {
            count: n,
            mean: SimDuration::from_nanos(sum / n),
            p50: pick(50),
            p95: pick(95),
            p99: pick(99),
            max: SimDuration::from_nanos(*ns.last().expect("non-empty")),
        }
    }
}

/// The complete analysis of one run's records.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAnalysis {
    /// Per-phase breakdown (stable order: post, work, wait, poll, dry).
    pub phases: Vec<PhaseTotal>,
    /// Full message latency (send posted → payload delivered).
    pub msg_latency: LatencyStats,
    /// Wire transfer latency (data start → payload delivered).
    pub xfer_latency: LatencyStats,
    /// Fraction of delivered payload bytes moved during work spans.
    pub overlap_efficiency: f64,
    /// Payload bytes moved during work spans (overlap-weighted).
    pub overlapped_bytes: u64,
    /// Total delivered payload bytes.
    pub total_bytes: u64,
    /// Delivered message count.
    pub messages: u64,
    /// Host interrupts taken (kernel NIC).
    pub interrupts: u64,
    /// Total host time consumed by ISRs.
    pub interrupt_time: SimDuration,
    /// NIC stall events (fault-injected / loss recovery).
    pub stalls: u64,
    /// Total stalled time.
    pub stall_time: SimDuration,
    /// Rendezvous retries.
    pub retries: u64,
    /// Dropped control messages.
    pub drops: u64,
    /// Sweep-cell cache hits (memory or disk tier).
    pub cache_hits: u64,
    /// Sweep-cell cache misses (cells computed fresh).
    pub cache_misses: u64,
    /// Requests that joined an identical in-flight computation.
    pub cache_joins: u64,
}

impl TraceAnalysis {
    /// Analyse a time-sorted record stream.
    pub fn from_records(records: &[TraceRecord]) -> Self {
        let set = build_spans(records);

        // Phase totals in a fixed display order.
        let order = [
            Phase::Post,
            Phase::Work,
            Phase::Wait,
            Phase::PollInterval,
            Phase::DryRun,
        ];
        let mut totals: BTreeMap<usize, (SimDuration, u64)> = BTreeMap::new();
        let mut work_windows: Vec<(SimTime, SimTime)> = Vec::new();
        for s in &set.frames {
            if let Some(p) = s.phase {
                let key = order.iter().position(|&o| o == p).expect("known phase");
                let e = totals.entry(key).or_insert((SimDuration::ZERO, 0));
                e.0 += s.end.since(s.start);
                e.1 += 1;
                if matches!(p, Phase::Work | Phase::PollInterval) {
                    work_windows.push((s.start, s.end));
                }
            }
        }
        let phases = totals
            .into_iter()
            .map(|(k, (total, count))| PhaseTotal {
                phase: order[k],
                total,
                count,
            })
            .collect();

        // Merge work windows into a disjoint union.
        work_windows.sort();
        let mut merged: Vec<(SimTime, SimTime)> = Vec::new();
        for (s, e) in work_windows {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }

        // Message latencies and overlap weighting from the async spans.
        let mut msg_lat = Vec::new();
        let mut xfer_lat = Vec::new();
        let mut total_bytes = 0u64;
        let mut overlapped = 0f64;
        let mut messages = 0u64;
        for a in &set.asyncs {
            match a.cat {
                "msg" => {
                    msg_lat.push(a.end.since(a.start).as_nanos());
                    messages += 1;
                }
                "xfer" => {
                    xfer_lat.push(a.end.since(a.start).as_nanos());
                    total_bytes += a.bytes;
                    let span_ns = a.end.since(a.start).as_nanos();
                    if span_ns > 0 {
                        let mut inside = 0u64;
                        for &(ws, we) in &merged {
                            let lo = a.start.max(ws);
                            let hi = a.end.min(we);
                            if hi > lo {
                                inside += hi.since(lo).as_nanos();
                            }
                        }
                        overlapped += a.bytes as f64 * (inside as f64 / span_ns as f64);
                    }
                }
                _ => {}
            }
        }

        // Point-event counters straight from the records.
        let mut interrupts = 0u64;
        let mut interrupt_time = SimDuration::ZERO;
        let mut stalls = 0u64;
        let mut stall_time = SimDuration::ZERO;
        let mut retries = 0u64;
        let mut drops = 0u64;
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        let mut cache_joins = 0u64;
        for r in records {
            match r.event {
                TraceEvent::Interrupt { cost } => {
                    interrupts += 1;
                    interrupt_time += cost;
                }
                TraceEvent::NicStall { penalty } => {
                    stalls += 1;
                    stall_time += penalty;
                }
                TraceEvent::Retried { .. } => retries += 1,
                TraceEvent::Dropped { .. } => drops += 1,
                TraceEvent::CacheLookup { hit, joined } => match (joined, hit) {
                    (true, _) => cache_joins += 1,
                    (false, true) => cache_hits += 1,
                    (false, false) => cache_misses += 1,
                },
                _ => {}
            }
        }

        TraceAnalysis {
            phases,
            msg_latency: LatencyStats::from_latencies(msg_lat),
            xfer_latency: LatencyStats::from_latencies(xfer_lat),
            overlap_efficiency: if total_bytes == 0 {
                0.0
            } else {
                overlapped / total_bytes as f64
            },
            overlapped_bytes: overlapped.round() as u64,
            total_bytes,
            messages,
            interrupts,
            interrupt_time,
            stalls,
            stall_time,
            retries,
            drops,
            cache_hits,
            cache_misses,
            cache_joins,
        }
    }

    /// Render the analysis as a fixed-width text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== trace analysis ==\n");
        out.push_str("phase breakdown:\n");
        let denom: u64 = self
            .phases
            .iter()
            .filter(|p| p.phase != Phase::DryRun)
            .map(|p| p.total.as_nanos())
            .sum();
        for p in &self.phases {
            let pct = if denom == 0 || p.phase == Phase::DryRun {
                String::new()
            } else {
                format!(
                    "  ({:.1}%)",
                    100.0 * p.total.as_nanos() as f64 / denom as f64
                )
            };
            writeln!(
                out,
                "  {:<5} {:>12}  x{:<5}{pct}",
                p.phase.name(),
                p.total.to_string(),
                p.count
            )
            .expect("write to String cannot fail");
        }
        let lat = |label: &str, s: &LatencyStats, out: &mut String| {
            writeln!(
                out,
                "{label} (N={}): mean {}  p50 {}  p95 {}  p99 {}  max {}",
                s.count, s.mean, s.p50, s.p95, s.p99, s.max
            )
            .expect("write to String cannot fail");
        };
        lat("message latency", &self.msg_latency, &mut out);
        lat("transfer latency", &self.xfer_latency, &mut out);
        writeln!(
            out,
            "overlap efficiency: {:.1}% ({} of {} payload bytes moved during work)",
            100.0 * self.overlap_efficiency,
            self.overlapped_bytes,
            self.total_bytes
        )
        .expect("write to String cannot fail");
        writeln!(
            out,
            "interrupts: {} ({})  stalls: {} ({})  retries: {}  drops: {}",
            self.interrupts,
            self.interrupt_time,
            self.stalls,
            self.stall_time,
            self.retries,
            self.drops
        )
        .expect("write to String cannot fail");
        // Only campaigns running under the cell cache emit lookups; keep
        // plain single-run reports unchanged.
        if self.cache_hits + self.cache_misses + self.cache_joins > 0 {
            writeln!(
                out,
                "cell cache: {} hits, {} misses, {} joined in-flight",
                self.cache_hits, self.cache_misses, self.cache_joins
            )
            .expect("write to String cannot fail");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Comp, MsgId};

    fn rec(ns: u64, comp: Comp, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            time: SimTime::from_nanos(ns),
            comp,
            event,
        }
    }

    #[test]
    fn latency_percentiles_nearest_rank() {
        let s = LatencyStats::from_latencies((1..=100).collect());
        assert_eq!(s.p50, SimDuration::from_nanos(50));
        assert_eq!(s.p95, SimDuration::from_nanos(95));
        assert_eq!(s.p99, SimDuration::from_nanos(99));
        assert_eq!(s.max, SimDuration::from_nanos(100));
        let one = LatencyStats::from_latencies(vec![7]);
        assert_eq!(one.p50, SimDuration::from_nanos(7));
        assert_eq!(one.p99, SimDuration::from_nanos(7));
        assert_eq!(LatencyStats::from_latencies(vec![]).count, 0);
    }

    #[test]
    fn overlap_efficiency_weights_bytes_by_work_coverage() {
        let app = Comp::App(0);
        let id = MsgId::new(0, 0);
        // Work span covers [100, 200); transfer [150, 250) => 50% overlap.
        let records = vec![
            rec(
                100,
                app,
                TraceEvent::PhaseBegin {
                    phase: Phase::Work,
                    cycle: 0,
                },
            ),
            rec(
                150,
                Comp::Mpi(0),
                TraceEvent::DataStart {
                    msg: id,
                    peer: 1,
                    bytes: 1000,
                },
            ),
            rec(
                200,
                app,
                TraceEvent::PhaseEnd {
                    phase: Phase::Work,
                    cycle: 0,
                },
            ),
            rec(
                250,
                Comp::Mpi(1),
                TraceEvent::DataDone {
                    msg: id,
                    bytes: 1000,
                },
            ),
        ];
        let a = TraceAnalysis::from_records(&records);
        assert!((a.overlap_efficiency - 0.5).abs() < 1e-9);
        assert_eq!(a.total_bytes, 1000);
        assert_eq!(a.overlapped_bytes, 500);
    }

    #[test]
    fn cache_lookups_are_counted_and_reported() {
        let c = Comp::Cache;
        let look = |hit, joined| TraceEvent::CacheLookup { hit, joined };
        let records = vec![
            rec(0, c, look(true, false)),
            rec(1, c, look(true, false)),
            rec(2, c, look(false, false)),
            rec(3, c, look(false, true)),
        ];
        let a = TraceAnalysis::from_records(&records);
        assert_eq!((a.cache_hits, a.cache_misses, a.cache_joins), (2, 1, 1));
        assert!(a
            .render()
            .contains("cell cache: 2 hits, 1 misses, 1 joined in-flight"));
        // Uncached runs keep their report format unchanged.
        assert!(!TraceAnalysis::from_records(&[])
            .render()
            .contains("cell cache"));
    }

    #[test]
    fn empty_records_analyse_cleanly() {
        let a = TraceAnalysis::from_records(&[]);
        assert_eq!(a.overlap_efficiency, 0.0);
        assert_eq!(a.messages, 0);
        assert!(a.render().contains("trace analysis"));
    }
}
