//! Envelope matching: the posted-receive queue and the unexpected-message
//! queue.
//!
//! MPI's matching rules: an arriving message is matched against posted
//! receives in post order; a newly posted receive is matched against
//! unexpected arrivals in arrival order. Together with FIFO wire delivery
//! this gives the MPI non-overtaking guarantee for any (source, tag) pair.

use crate::request::RequestHandle;
use crate::types::{Envelope, Payload, Rank, RankSel, TagSel};
use std::collections::VecDeque;

/// A posted, not-yet-matched receive.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PostedRecv {
    pub req: RequestHandle,
    pub src: RankSel,
    pub tag: TagSel,
}

/// Why an unexpected entry exists: an eager message whose payload is already
/// here, or a rendezvous announcement whose payload is still on the sender.
pub(crate) enum UnexpectedBody {
    /// Full payload arrived (eager / offloaded transports).
    Eager(Payload),
    /// Rendezvous announced; reply with CTS carrying the sender's token.
    Rndv {
        /// Sender-side token to echo in the CTS.
        sender_token: u64,
    },
}

/// An arrival that found no posted receive.
pub(crate) struct Unexpected {
    pub env: Envelope,
    /// Trace correlation id of the message (`comb_trace::MsgId` bits).
    pub corr: u64,
    pub body: UnexpectedBody,
}

/// The matching engine state for one rank.
#[derive(Default)]
pub(crate) struct MatchEngine {
    posted: VecDeque<PostedRecv>,
    unexpected: VecDeque<Unexpected>,
    pub unexpected_total: u64,
}

impl MatchEngine {
    /// Match an arriving envelope against the posted receives (post order).
    /// On a hit the posted entry is removed and returned.
    pub fn match_arrival(&mut self, src: Rank, env: &Envelope) -> Option<PostedRecv> {
        debug_assert_eq!(src, env.src);
        let idx = self
            .posted
            .iter()
            .position(|p| p.src.matches(env.src) && p.tag.matches(env.tag))?;
        self.posted.remove(idx)
    }

    /// Queue an arrival that matched nothing.
    pub fn add_unexpected(&mut self, u: Unexpected) {
        self.unexpected_total += 1;
        self.unexpected.push_back(u);
    }

    /// Match a new receive against the unexpected queue (arrival order).
    /// On a hit the unexpected entry is removed and returned; otherwise the
    /// receive is queued as posted.
    pub fn post_recv(&mut self, recv: PostedRecv) -> Option<Unexpected> {
        let idx = self
            .unexpected
            .iter()
            .position(|u| recv.src.matches(u.env.src) && recv.tag.matches(u.env.tag));
        match idx {
            Some(i) => self.unexpected.remove(i),
            None => {
                self.posted.push_back(recv);
                None
            }
        }
    }

    /// Non-destructively find the first unexpected arrival matching the
    /// selectors (for `MPI_Iprobe`).
    pub fn peek_unexpected(&self, src: RankSel, tag: TagSel) -> Option<Envelope> {
        self.unexpected
            .iter()
            .find(|u| src.matches(u.env.src) && tag.matches(u.env.tag))
            .map(|u| u.env)
    }

    /// Number of posted-but-unmatched receives.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn posted_len(&self) -> usize {
        self.posted.len()
    }

    /// Number of queued unexpected arrivals.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn unexpected_len(&self) -> usize {
        self.unexpected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Tag;

    fn env(src: usize, tag: u32, len: u64) -> Envelope {
        Envelope {
            src: Rank(src),
            tag: Tag(tag),
            len,
        }
    }

    fn recv(id: u64, src: RankSel, tag: TagSel) -> PostedRecv {
        PostedRecv {
            req: RequestHandle(id),
            src,
            tag,
        }
    }

    #[test]
    fn arrival_matches_in_post_order() {
        let mut m = MatchEngine::default();
        assert!(m.post_recv(recv(1, RankSel::Any, TagSel::Any)).is_none());
        assert!(m.post_recv(recv(2, RankSel::Any, TagSel::Any)).is_none());
        let hit = m.match_arrival(Rank(0), &env(0, 5, 10)).unwrap();
        assert_eq!(hit.req, RequestHandle(1), "earliest posted receive wins");
        let hit = m.match_arrival(Rank(0), &env(0, 5, 10)).unwrap();
        assert_eq!(hit.req, RequestHandle(2));
        assert!(m.match_arrival(Rank(0), &env(0, 5, 10)).is_none());
    }

    #[test]
    fn tag_and_source_filters_apply() {
        let mut m = MatchEngine::default();
        m.post_recv(recv(1, RankSel::Is(Rank(2)), TagSel::Is(Tag(7))));
        assert!(m.match_arrival(Rank(1), &env(1, 7, 0)).is_none());
        assert!(m.match_arrival(Rank(2), &env(2, 8, 0)).is_none());
        let hit = m.match_arrival(Rank(2), &env(2, 7, 0)).unwrap();
        assert_eq!(hit.req, RequestHandle(1));
        // The two non-matching arrivals were not queued automatically —
        // callers do that explicitly.
        assert_eq!(m.unexpected_len(), 0);
    }

    #[test]
    fn new_recv_matches_unexpected_in_arrival_order() {
        let mut m = MatchEngine::default();
        m.add_unexpected(Unexpected {
            env: env(0, 1, 100),
            corr: 0,
            body: UnexpectedBody::Eager(Payload::synthetic(100)),
        });
        m.add_unexpected(Unexpected {
            env: env(0, 1, 200),
            corr: 0,
            body: UnexpectedBody::Eager(Payload::synthetic(200)),
        });
        let hit = m
            .post_recv(recv(9, RankSel::Any, TagSel::Is(Tag(1))))
            .unwrap();
        assert_eq!(hit.env.len, 100, "earliest arrival wins");
        let hit = m.post_recv(recv(10, RankSel::Any, TagSel::Any)).unwrap();
        assert_eq!(hit.env.len, 200);
        assert_eq!(m.unexpected_len(), 0);
        assert_eq!(m.unexpected_total, 2);
    }

    #[test]
    fn specific_recv_skips_non_matching_unexpected() {
        let mut m = MatchEngine::default();
        m.add_unexpected(Unexpected {
            env: env(0, 1, 100),
            corr: 0,
            body: UnexpectedBody::Eager(Payload::synthetic(100)),
        });
        let miss = m.post_recv(recv(1, RankSel::Any, TagSel::Is(Tag(2))));
        assert!(miss.is_none());
        assert_eq!(m.posted_len(), 1);
        assert_eq!(m.unexpected_len(), 1);
    }
}
