//! Ablation benches for the design choices DESIGN.md calls out: message
//! queue depth (the paper's "queue size 1 degenerates to ping-pong"),
//! PWW batch size, the eager/rendezvous threshold, and the interrupt cost
//! model. Each bench's *output metric* is the simulated result; criterion
//! tracks the regeneration cost.

use comb_bench::bench_config;
use comb_core::{run_polling_point, run_pww_point, Transport};
use comb_hw::HwConfig;
use comb_sim::SimDuration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_queue_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_queue_depth");
    group.sample_size(10);
    for q in [1usize, 2, 4, 8] {
        let mut cfg = bench_config(Transport::Gm, 100 * 1024);
        cfg.queue_depth = q;
        group.bench_with_input(BenchmarkId::from_parameter(q), &cfg, |b, cfg| {
            b.iter(|| black_box(run_polling_point(cfg, 10_000).unwrap()))
        });
    }
    group.finish();
}

fn bench_batch_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pww_batch");
    group.sample_size(10);
    for batch in [1usize, 2, 4] {
        let mut cfg = bench_config(Transport::Portals, 100 * 1024);
        cfg.batch = batch;
        group.bench_with_input(BenchmarkId::from_parameter(batch), &cfg, |b, cfg| {
            b.iter(|| black_box(run_pww_point(cfg, 500_000, false).unwrap()))
        });
    }
    group.finish();
}

fn bench_eager_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_eager_threshold");
    group.sample_size(10);
    for threshold_kb in [4u64, 16, 128] {
        let mut hw = HwConfig::gm_myrinet();
        hw.mpi.eager_threshold = threshold_kb * 1024;
        let cfg = bench_config(Transport::from(hw), 32 * 1024);
        group.bench_with_input(BenchmarkId::from_parameter(threshold_kb), &cfg, |b, cfg| {
            b.iter(|| black_box(run_polling_point(cfg, 10_000).unwrap()))
        });
    }
    group.finish();
}

fn bench_isr_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_isr_cost");
    group.sample_size(10);
    for isr_us in [2u64, 10, 40] {
        let mut hw = HwConfig::portals_myrinet();
        hw.nic.rx_per_packet = SimDuration::from_micros(isr_us);
        let cfg = bench_config(Transport::from(hw), 100 * 1024);
        group.bench_with_input(BenchmarkId::from_parameter(isr_us), &cfg, |b, cfg| {
            b.iter(|| black_box(run_polling_point(cfg, 10_000).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_queue_depth,
    bench_batch_size,
    bench_eager_threshold,
    bench_isr_cost
);
criterion_main!(benches);
