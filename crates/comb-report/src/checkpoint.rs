//! Campaign checkpointing: an append-only journal of finished sweep
//! points, and the loader that lets an interrupted campaign resume
//! without re-running them.
//!
//! ## Format
//!
//! The journal is a line-oriented text file:
//!
//! ```text
//! comb-checkpoint v1
//! fidelity per_decade=1 cycles=2 target_iters=500000 max_intervals=1000
//! point polling|GM|102400 10 polling <fields...>
//! point pww|GM|102400|0 10000 pww <fields...>
//! ```
//!
//! One `point` line per finished sweep cell, keyed by the campaign's
//! [`CampaignKey::canonical`] identity and the cell's x value. Samples
//! are serialized **exactly**: every `f64` as its IEEE-754 bit pattern
//! in hex, durations as nanoseconds, histograms as raw bucket vectors.
//! A restored sample is therefore `==` to the sample a re-run would
//! produce, which is what makes resumed exports byte-identical to
//! uninterrupted ones.
//!
//! ## Crash safety
//!
//! Lines are appended and flushed as workers finish cells (the file
//! handle lives behind a mutex, so concurrent workers interleave whole
//! lines, never bytes). If the process dies mid-append the journal may
//! end in a torn partial line; the loader tolerates exactly one
//! unparseable **final** line and rejects corruption anywhere else. The
//! fidelity fingerprint in the header guards against resuming a journal
//! produced at a different sweep density — silently mixing fidelities
//! would corrupt every downstream figure. The `jobs` knob is absent
//! from the fingerprint on purpose: worker count never affects results,
//! so a campaign may be interrupted at `--jobs 4` and resumed at
//! `--jobs 1` (or vice versa).

use crate::figures::Fidelity;
use comb_core::{CombError, FaultCounters, PollingSample, PwwSample};
use comb_sim::stats::DurationHistogram;
use comb_sim::SimDuration;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const MAGIC: &str = "comb-checkpoint v1";

/// One finished sweep cell's result, either method.
#[derive(Debug, Clone, PartialEq)]
pub enum PointSample {
    /// A polling-method cell.
    Polling(PollingSample),
    /// A PWW-method cell (also used by the overhead campaigns).
    Pww(PwwSample),
}

fn fingerprint(f: &Fidelity) -> String {
    format!(
        "fidelity per_decade={} cycles={} target_iters={} max_intervals={}",
        f.per_decade, f.cycles, f.target_iters, f.max_intervals
    )
}

/// The completed cells replayed from a journal.
#[derive(Debug, Default)]
pub struct CheckpointState {
    completed: HashMap<(String, u64), PointSample>,
}

impl CheckpointState {
    /// Look up a finished cell by campaign identity and x value.
    pub fn get(&self, key: &str, x: u64) -> Option<&PointSample> {
        self.completed.get(&(key.to_string(), x))
    }

    /// Number of finished cells in the journal.
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// True if the journal held no finished cells.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }
}

/// Append handle on a checkpoint journal. Clone-free and `Sync`: sweep
/// workers share one `&Journal` and append finished cells as they
/// complete.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl Journal {
    /// Open `path` for a campaign at `fidelity`, replaying any finished
    /// cells already journaled there.
    ///
    /// * Missing file → a fresh journal with a header is created and the
    ///   returned state is empty.
    /// * Existing file → its header is validated (magic and fidelity
    ///   fingerprint must match) and every well-formed `point` line is
    ///   loaded; a torn final line (crash mid-append) is dropped.
    pub fn open(path: &Path, fidelity: &Fidelity) -> Result<(Journal, CheckpointState), CombError> {
        let want = fingerprint(fidelity);
        let state = if path.exists() {
            let text =
                std::fs::read_to_string(path).map_err(|e| CombError::io(path.display(), &e))?;
            parse_journal(&text, &want)
                .map_err(|msg| CombError::checkpoint(format!("{}: {msg}", path.display())))?
        } else {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)
                        .map_err(|e| CombError::io(parent.display(), &e))?;
                }
            }
            std::fs::write(path, format!("{MAGIC}\n{want}\n"))
                .map_err(|e| CombError::io(path.display(), &e))?;
            CheckpointState::default()
        };
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| CombError::io(path.display(), &e))?;
        Ok((
            Journal {
                path: path.to_path_buf(),
                file: Mutex::new(file),
            },
            state,
        ))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one finished cell. The full line is written and flushed
    /// under the journal lock, so concurrent workers never interleave.
    pub fn record(&self, key: &str, x: u64, sample: &PointSample) -> Result<(), CombError> {
        let line = encode_point(key, x, sample);
        let mut f = self.file.lock().unwrap_or_else(|p| p.into_inner());
        f.write_all(line.as_bytes())
            .and_then(|()| f.flush())
            .map_err(|e| CombError::io(self.path.display(), &e))
    }
}

fn parse_journal(text: &str, want_fingerprint: &str) -> Result<CheckpointState, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(MAGIC) => {}
        Some(other) => return Err(format!("not a checkpoint journal (header '{other}')")),
        None => return Err("empty file".to_string()),
    }
    match lines.next() {
        Some(fp) if fp == want_fingerprint => {}
        Some(fp) => {
            return Err(format!(
                "journal was written at a different fidelity\n  journal: {fp}\n  campaign: {want_fingerprint}"
            ))
        }
        None => return Err("missing fidelity line".to_string()),
    }
    let rest: Vec<&str> = lines.collect();
    let mut state = CheckpointState::default();
    for (i, line) in rest.iter().enumerate() {
        if line.is_empty() {
            continue;
        }
        match decode_point(line) {
            Some((key, x, sample)) => {
                state.completed.insert((key, x), sample);
            }
            // A torn tail from a crash mid-append is expected; corruption
            // anywhere else is not.
            None if i + 1 == rest.len() => {}
            None => return Err(format!("corrupt journal line {}: '{line}'", i + 3)),
        }
    }
    Ok(state)
}

// --- exact-bit field encoding ------------------------------------------

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

struct Fields<'a>(std::str::SplitWhitespace<'a>);

impl<'a> Fields<'a> {
    fn u64(&mut self) -> Option<u64> {
        self.0.next()?.parse().ok()
    }

    fn u128(&mut self) -> Option<u128> {
        self.0.next()?.parse().ok()
    }

    fn f64(&mut self) -> Option<f64> {
        let tok = self.0.next()?;
        if tok.len() != 16 {
            return None;
        }
        u64::from_str_radix(tok, 16).ok().map(f64::from_bits)
    }

    fn dur(&mut self) -> Option<SimDuration> {
        self.u64().map(SimDuration::from_nanos)
    }

    fn bool(&mut self) -> Option<bool> {
        match self.0.next()? {
            "0" => Some(false),
            "1" => Some(true),
            _ => None,
        }
    }

    fn buckets(&mut self) -> Option<Vec<u64>> {
        let tok = self.0.next()?;
        if tok == "-" {
            return Some(Vec::new());
        }
        tok.split(',').map(|b| b.parse().ok()).collect()
    }

    fn done(mut self) -> Option<()> {
        match self.0.next() {
            None => Some(()),
            Some(_) => None,
        }
    }
}

fn push_faults(out: &mut String, f: &FaultCounters) {
    let _ = write!(
        out,
        " {} {} {} {} {}",
        f.lost_packets, f.retransmissions, f.ctl_dropped, f.storm_interrupts, f.rndv_retries
    );
}

fn read_faults(f: &mut Fields) -> Option<FaultCounters> {
    Some(FaultCounters {
        lost_packets: f.u64()?,
        retransmissions: f.u64()?,
        ctl_dropped: f.u64()?,
        storm_interrupts: f.u64()?,
        rndv_retries: f.u64()?,
    })
}

fn encode_point(key: &str, x: u64, sample: &PointSample) -> String {
    let mut out = format!("point {key} {x}");
    match sample {
        PointSample::Polling(s) => {
            let _ = write!(
                out,
                " polling {} {} {} {} {} {} {} {} {} {}",
                s.poll_interval,
                s.msg_bytes,
                s.total_iters,
                s.warmup_polls,
                s.work_only.as_nanos(),
                s.elapsed.as_nanos(),
                f64_hex(s.availability),
                f64_hex(s.bandwidth_mbs),
                s.messages_received,
                s.stolen.as_nanos(),
            );
            push_faults(&mut out, &s.faults);
        }
        PointSample::Pww(s) => {
            let _ = write!(
                out,
                " pww {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
                s.work_interval,
                s.msg_bytes,
                s.cycles,
                s.batch,
                u8::from(s.test_in_work),
                s.post_phase.as_nanos(),
                s.post_per_msg.as_nanos(),
                s.work_with_mh.as_nanos(),
                s.work_only.as_nanos(),
                s.wait_phase.as_nanos(),
                s.wait_per_msg.as_nanos(),
                f64_hex(s.availability),
                f64_hex(s.bandwidth_mbs),
                s.stolen.as_nanos(),
            );
            let buckets = s.wait_histogram.raw_buckets();
            if buckets.is_empty() {
                out.push_str(" -");
            } else {
                out.push(' ');
                for (i, b) in buckets.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{b}");
                }
            }
            let _ = write!(out, " {}", s.wait_histogram.sum_nanos());
            push_faults(&mut out, &s.faults);
        }
    }
    out.push('\n');
    out
}

fn decode_point(line: &str) -> Option<(String, u64, PointSample)> {
    let mut f = Fields(line.split_whitespace());
    if f.0.next()? != "point" {
        return None;
    }
    let key = f.0.next()?.to_string();
    let x = f.u64()?;
    let sample = match f.0.next()? {
        "polling" => {
            let s = PollingSample {
                poll_interval: f.u64()?,
                msg_bytes: f.u64()?,
                total_iters: f.u64()?,
                warmup_polls: f.u64()?,
                work_only: f.dur()?,
                elapsed: f.dur()?,
                availability: f.f64()?,
                bandwidth_mbs: f.f64()?,
                messages_received: f.u64()?,
                stolen: f.dur()?,
                faults: read_faults(&mut f)?,
            };
            PointSample::Polling(s)
        }
        "pww" => {
            let s = PwwSample {
                work_interval: f.u64()?,
                msg_bytes: f.u64()?,
                cycles: f.u64()?,
                batch: f.u64()?,
                test_in_work: f.bool()?,
                post_phase: f.dur()?,
                post_per_msg: f.dur()?,
                work_with_mh: f.dur()?,
                work_only: f.dur()?,
                wait_phase: f.dur()?,
                wait_per_msg: f.dur()?,
                availability: f.f64()?,
                bandwidth_mbs: f.f64()?,
                stolen: f.dur()?,
                wait_histogram: {
                    let buckets = f.buckets()?;
                    let sum = f.u128()?;
                    DurationHistogram::from_raw(buckets, sum)
                },
                faults: read_faults(&mut f)?,
            };
            PointSample::Pww(s)
        }
        _ => return None,
    };
    f.done()?;
    Some((key, x, sample))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn polling_sample() -> PollingSample {
        PollingSample {
            poll_interval: 1000,
            msg_bytes: 102_400,
            total_iters: 500_000,
            warmup_polls: 4,
            work_only: SimDuration::from_nanos(123_456_789),
            elapsed: SimDuration::from_nanos(987_654_321),
            availability: 0.1 + 0.2, // deliberately not exactly 0.3
            bandwidth_mbs: 87.300_000_000_000_01,
            messages_received: 42,
            stolen: SimDuration::from_nanos(555),
            faults: FaultCounters {
                lost_packets: 1,
                retransmissions: 2,
                ctl_dropped: 3,
                storm_interrupts: 4,
                rndv_retries: 5,
            },
        }
    }

    fn pww_sample() -> PwwSample {
        let mut hist = DurationHistogram::new();
        hist.record(SimDuration::from_micros(3));
        hist.record(SimDuration::from_nanos(700));
        PwwSample {
            work_interval: 10_000,
            msg_bytes: 102_400,
            cycles: 12,
            batch: 1,
            test_in_work: true,
            post_phase: SimDuration::from_nanos(11),
            post_per_msg: SimDuration::from_nanos(12),
            work_with_mh: SimDuration::from_nanos(13),
            work_only: SimDuration::from_nanos(14),
            wait_phase: SimDuration::from_nanos(15),
            wait_per_msg: SimDuration::from_nanos(16),
            availability: f64::MIN_POSITIVE, // subnormal-adjacent edge
            bandwidth_mbs: 1.0 / 3.0,
            stolen: SimDuration::ZERO,
            wait_histogram: hist,
            faults: FaultCounters::default(),
        }
    }

    #[test]
    fn point_lines_roundtrip_exactly() {
        for (x, sample) in [
            (1000u64, PointSample::Polling(polling_sample())),
            (10_000, PointSample::Pww(pww_sample())),
        ] {
            let line = encode_point("pww|GM|102400|1", x, &sample);
            let (key, got_x, got) = decode_point(line.trim_end()).expect("line must parse");
            assert_eq!(key, "pww|GM|102400|1");
            assert_eq!(got_x, x);
            assert_eq!(got, sample, "restore must be bit-exact");
        }
    }

    #[test]
    fn journal_open_replays_recorded_points() {
        let dir = std::env::temp_dir().join("comb_ckpt_replay");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("campaign.ckpt");
        let fid = Fidelity::smoke();
        {
            let (journal, state) = Journal::open(&path, &fid).unwrap();
            assert!(state.is_empty());
            journal
                .record(
                    "polling|GM|102400",
                    10,
                    &PointSample::Polling(polling_sample()),
                )
                .unwrap();
            journal
                .record("pww|GM|102400|1", 20, &PointSample::Pww(pww_sample()))
                .unwrap();
        }
        let (_, state) = Journal::open(&path, &fid).unwrap();
        assert_eq!(state.len(), 2);
        assert_eq!(
            state.get("polling|GM|102400", 10),
            Some(&PointSample::Polling(polling_sample()))
        );
        assert!(state.get("polling|GM|102400", 11).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_line_is_dropped_but_midfile_corruption_rejected() {
        let fid = Fidelity::smoke();
        let good = encode_point("overhead|GM", 25_000, &PointSample::Pww(pww_sample()));
        let header = format!("{MAGIC}\n{}\n", fingerprint(&fid));

        // Torn tail: the crash cut the last line short.
        let torn = format!("{header}{good}point overhead|GM 50000 pww 50000 1024");
        let state = parse_journal(&torn, &fingerprint(&fid)).unwrap();
        assert_eq!(state.len(), 1);

        // The same garbage mid-file is corruption, not a crash artifact.
        let corrupt = format!("{header}point garbage\n{good}");
        assert!(parse_journal(&corrupt, &fingerprint(&fid))
            .unwrap_err()
            .contains("corrupt"));
    }

    #[test]
    fn fidelity_mismatch_is_refused() {
        let dir = std::env::temp_dir().join("comb_ckpt_fidelity");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("campaign.ckpt");
        let (_, _) = Journal::open(&path, &Fidelity::smoke()).unwrap();
        let err = Journal::open(&path, &Fidelity::quick()).unwrap_err();
        assert_eq!(err.kind, comb_core::ErrorKind::Checkpoint);
        assert!(err.message.contains("different fidelity"), "{err}");
        // Same fidelity at a different job count must still resume.
        assert!(Journal::open(&path, &Fidelity::smoke().with_jobs(7)).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_journal_file_is_refused() {
        let dir = std::env::temp_dir().join("comb_ckpt_magic");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("not-a-journal.txt");
        std::fs::write(&path, "series,x,y\n").unwrap();
        let err = Journal::open(&path, &Fidelity::smoke()).unwrap_err();
        assert!(err.message.contains("not a checkpoint journal"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
