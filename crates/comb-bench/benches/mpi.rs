//! Micro-benchmarks of the MPI layer: round-trip exchanges across the
//! protocol paths (eager, rendezvous, offload) and posting throughput.

use comb_hw::{Cluster, HwConfig};
use comb_mpi::{MpiWorld, Payload, Rank, Tag};
use comb_sim::Simulation;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn roundtrips(cfg: &HwConfig, size: u64, count: u32) -> u64 {
    let mut sim = Simulation::new();
    let cluster = Cluster::build(&sim.handle(), cfg, 2);
    let world = MpiWorld::attach(&sim.handle(), &cluster);
    let (m0, m1) = (world.proc(Rank(0)), world.proc(Rank(1)));
    sim.spawn("a", move |ctx| {
        for _ in 0..count {
            m0.send(ctx, Rank(1), Tag(1), Payload::synthetic(size));
            let _ = m0.recv(ctx, Rank(1), Tag(2));
        }
    });
    sim.spawn("b", move |ctx| {
        for _ in 0..count {
            let _ = m1.recv(ctx, Rank(0), Tag(1));
            m1.send(ctx, Rank(0), Tag(2), Payload::synthetic(size));
        }
    });
    sim.run().unwrap().as_nanos()
}

fn bench_roundtrips(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpi_roundtrip");
    group.sample_size(20);
    for (name, cfg) in [
        ("gm_eager_1k", (HwConfig::gm_myrinet(), 1024u64)),
        ("gm_rndv_100k", (HwConfig::gm_myrinet(), 100 * 1024)),
        ("portals_1k", (HwConfig::portals_myrinet(), 1024)),
        ("portals_100k", (HwConfig::portals_myrinet(), 100 * 1024)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, (hw, size)| {
            b.iter(|| black_box(roundtrips(hw, *size, 20)))
        });
    }
    group.finish();
}

fn bench_posting(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpi_posting");
    group.sample_size(20);
    group.bench_function("post_and_waitall_64_requests", |b| {
        b.iter(|| {
            let cfg = HwConfig::portals_myrinet();
            let mut sim = Simulation::new();
            let cluster = Cluster::build(&sim.handle(), &cfg, 2);
            let world = MpiWorld::attach(&sim.handle(), &cluster);
            let (m0, m1) = (world.proc(Rank(0)), world.proc(Rank(1)));
            sim.spawn("a", move |ctx| {
                let mut reqs = Vec::new();
                for _ in 0..32 {
                    reqs.push(m0.irecv(ctx, Rank(1), Tag(1)));
                    reqs.push(m0.isend(ctx, Rank(1), Tag(1), Payload::synthetic(4096)));
                }
                m0.waitall(ctx, &reqs);
            });
            sim.spawn("b", move |ctx| {
                let mut reqs = Vec::new();
                for _ in 0..32 {
                    reqs.push(m1.irecv(ctx, Rank(0), Tag(1)));
                    reqs.push(m1.isend(ctx, Rank(0), Tag(1), Payload::synthetic(4096)));
                }
                m1.waitall(ctx, &reqs);
            });
            black_box(sim.run().unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_roundtrips, bench_posting);
criterion_main!(benches);
