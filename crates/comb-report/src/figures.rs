//! Definitions of every data figure in the paper's evaluation (Figures
//! 4–17; Figures 1–3 are method diagrams) and the code that regenerates
//! them on the simulated platforms.

use crate::checkpoint::{CheckpointState, Journal, PointSample};
use crate::series::{CiBand, Dataset, Series};
use comb_core::{
    lin_spaced, log_spaced, mean_ci, polling_sweep, pww_sweep, replicate_key, run_adaptive_cells,
    run_cell_cached, run_cells, run_ordered, AdaptiveCell, AdaptiveParams, AdaptiveStats,
    CacheOutcome, CellCache, CellMethod, CellOutcome, CombError, MethodConfig, PollingSample,
    PwwSample, RetryPolicy, RunError, Transport, Welford, PAPER_SIZES,
};
use comb_trace::Tracer;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The paper's data figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum FigureId {
    Fig04,
    Fig05,
    Fig06,
    Fig07,
    Fig08,
    Fig09,
    Fig10,
    Fig11,
    Fig12,
    Fig13,
    Fig14,
    Fig15,
    Fig16,
    Fig17,
}

impl FigureId {
    /// All data figures, in paper order.
    pub const ALL: [FigureId; 14] = [
        FigureId::Fig04,
        FigureId::Fig05,
        FigureId::Fig06,
        FigureId::Fig07,
        FigureId::Fig08,
        FigureId::Fig09,
        FigureId::Fig10,
        FigureId::Fig11,
        FigureId::Fig12,
        FigureId::Fig13,
        FigureId::Fig14,
        FigureId::Fig15,
        FigureId::Fig16,
        FigureId::Fig17,
    ];

    /// The paper's caption, abbreviated.
    pub fn title(self) -> &'static str {
        match self {
            FigureId::Fig04 => "Polling Method: CPU Availability (Portals)",
            FigureId::Fig05 => "Polling Method: Bandwidth (Portals)",
            FigureId::Fig06 => "PWW Method: CPU Availability (Portals)",
            FigureId::Fig07 => "PWW Method: Bandwidth (Portals)",
            FigureId::Fig08 => "Polling Method: Bandwidth for GM and Portals",
            FigureId::Fig09 => "PWW Method: Bandwidth for GM and Portals",
            FigureId::Fig10 => "PWW Method: Average Post Time (100 KB)",
            FigureId::Fig11 => "PWW Method: Average Wait Time (100 KB)",
            FigureId::Fig12 => "PWW Method: CPU Overhead for Portals",
            FigureId::Fig13 => "PWW Method: CPU Overhead for GM",
            FigureId::Fig14 => "Polling Method: Bandwidth vs CPU Availability (GM)",
            FigureId::Fig15 => "Polling Method: Bandwidth vs CPU Availability (Portals)",
            FigureId::Fig16 => "Polling and PWW Methods: Bandwidth vs Availability (GM)",
            FigureId::Fig17 => "Polling and Modified PWW: Bandwidth vs Availability (GM)",
        }
    }

    /// What the figure demonstrates (paper Section 4).
    pub fn description(self) -> &'static str {
        match self {
            FigureId::Fig04 => {
                "Availability stays low while interrupts process messages, then rises \
                 steeply once the poll interval is long enough to stall the flow."
            }
            FigureId::Fig05 => {
                "Bandwidth plateaus at the sustained maximum, then declines steeply when \
                 all in-flight messages complete within one poll interval."
            }
            FigureId::Fig06 => {
                "No initial plateau: the PWW wait-regardless semantics suppress apparent \
                 availability until the work interval fills the delay."
            }
            FigureId::Fig07 => "Bandwidth declines more gradually with work interval than polling.",
            FigureId::Fig08 => "GM's OS-bypass beats interrupt-driven Portals on raw bandwidth.",
            FigureId::Fig09 => "GM also wins under PWW at small work intervals.",
            FigureId::Fig10 => {
                "Posting is far cheaper on GM than through Portals' kernel crossing."
            }
            FigureId::Fig11 => {
                "The application-offload detector: Portals' wait vanishes for long work \
                 intervals; GM's wait stays at the transfer time."
            }
            FigureId::Fig12 => {
                "Portals: work with message handling exceeds work alone — interrupt \
                 overhead dilates the work phase."
            }
            FigureId::Fig13 => "GM: no overhead — the two work curves coincide.",
            FigureId::Fig14 => {
                "GM sustains peak bandwidth at high availability (true overlap), except \
                 the 10 KB curve, dragged down by the 45 us small-message send path."
            }
            FigureId::Fig15 => "Portals only reaches peak bandwidth at low availability.",
            FigureId::Fig16 => {
                "Under PWW, GM loses bandwidth at much lower availability than under \
                 polling — library progress needs the application's calls."
            }
            FigureId::Fig17 => {
                "One MPI_Test inside the work phase extends GM's PWW bandwidth into \
                 higher availability."
            }
        }
    }

    /// Stable lowercase id ("fig04").
    pub fn id(self) -> String {
        format!("{self}")
    }
}

impl fmt::Display for FigureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = match self {
            FigureId::Fig04 => 4,
            FigureId::Fig05 => 5,
            FigureId::Fig06 => 6,
            FigureId::Fig07 => 7,
            FigureId::Fig08 => 8,
            FigureId::Fig09 => 9,
            FigureId::Fig10 => 10,
            FigureId::Fig11 => 11,
            FigureId::Fig12 => 12,
            FigureId::Fig13 => 13,
            FigureId::Fig14 => 14,
            FigureId::Fig15 => 15,
            FigureId::Fig16 => 16,
            FigureId::Fig17 => 17,
        };
        write!(f, "fig{n:02}")
    }
}

impl FromStr for FigureId {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().to_lowercase();
        let norm = norm
            .strip_prefix("fig")
            .or_else(|| norm.strip_prefix("figure"))
            .unwrap_or(&norm)
            .trim_matches(|c: char| !c.is_ascii_digit());
        let n: u32 = norm.parse().map_err(|_| format!("unknown figure '{s}'"))?;
        FigureId::ALL
            .iter()
            .copied()
            .find(|f| f.id() == format!("fig{n:02}"))
            .ok_or_else(|| format!("no data figure {n} (the paper's data figures are 4..17)"))
    }
}

/// Sweep density / run length, trading accuracy for wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fidelity {
    /// Sweep points per decade of the x axis.
    pub per_decade: u32,
    /// PWW cycles averaged per point.
    pub cycles: u64,
    /// Polling: target total work iterations per point.
    pub target_iters: u64,
    /// Polling: cap on poll intervals per point.
    pub max_intervals: u64,
    /// Worker threads for campaign execution (`0` = auto: `COMB_JOBS`,
    /// else available parallelism). Does not affect results, only wall
    /// time.
    pub jobs: usize,
    /// Adaptive replicate sampling: when set, campaigns run each cell
    /// until the CI target is met (or the cap), and exports carry CI
    /// bands. `None` (the default) is the legacy single-shot mode with
    /// byte-identical exports. Part of the checkpoint fingerprint:
    /// changing these knobs changes every cell's result.
    pub adaptive: Option<AdaptiveParams>,
}

impl Fidelity {
    /// Minimal preset for CI and byte-identity checks (coarsest sweeps
    /// that still exercise every figure's code path).
    pub fn smoke() -> Fidelity {
        Fidelity {
            per_decade: 1,
            cycles: 2,
            target_iters: 500_000,
            max_intervals: 1_000,
            jobs: 0,
            adaptive: None,
        }
    }

    /// Fast preset for tests and smoke runs (a full evaluation in seconds).
    pub fn quick() -> Fidelity {
        Fidelity {
            per_decade: 2,
            cycles: 6,
            target_iters: 2_000_000,
            max_intervals: 4_000,
            jobs: 0,
            adaptive: None,
        }
    }

    /// Paper-density preset (a full evaluation in a couple of minutes).
    pub fn paper() -> Fidelity {
        Fidelity {
            per_decade: 3,
            cycles: 12,
            target_iters: 8_000_000,
            max_intervals: 20_000,
            jobs: 0,
            adaptive: None,
        }
    }

    /// This fidelity with a specific worker count.
    pub fn with_jobs(mut self, jobs: usize) -> Fidelity {
        self.jobs = jobs;
        self
    }

    /// This fidelity with adaptive replicate sampling enabled.
    pub fn with_adaptive(mut self, params: AdaptiveParams) -> Fidelity {
        self.adaptive = Some(params);
        self
    }

    fn method_config(&self, transport: Transport, size: u64) -> MethodConfig {
        let mut cfg = MethodConfig::new(transport, size);
        cfg.cycles = self.cycles;
        cfg.target_iters = self.target_iters;
        cfg.max_intervals = self.max_intervals;
        cfg.jobs = self.jobs;
        cfg
    }
}

/// The paper's x-axis ranges, in loop iterations.
const POLL_RANGE: (u64, u64) = (10, 100_000_000);
const PWW_RANGE: (u64, u64) = (10_000, 10_000_000);
/// Figures 12/13 use a linear axis to 500k iterations.
const OVERHEAD_RANGE: (u64, u64) = (25_000, 500_000);
const OVERHEAD_POINTS: usize = 8;

/// One sweep campaign a figure depends on. Several figures share a
/// campaign (e.g. Figures 4, 5 and 15 all need the Portals polling sweep),
/// so planning dedups on this key before any simulation runs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CampaignKey {
    /// Polling-method sweep over the poll interval.
    Polling {
        /// Platform name (campaigns are keyed by resolved platform).
        platform: String,
        /// Message size in bytes.
        msg_bytes: u64,
    },
    /// PWW-method sweep over the work interval.
    Pww {
        /// Platform name.
        platform: String,
        /// Message size in bytes.
        msg_bytes: u64,
        /// Section 4.3 modified variant (one `MPI_Test` in the work phase).
        test_in_work: bool,
    },
    /// Figures 12/13 linear-axis overhead sweep (PWW at 100 KB).
    Overhead {
        /// Platform name.
        platform: String,
    },
}

impl CampaignKey {
    /// Stable one-token identity used by checkpoint journals and failure
    /// manifests: `polling|GM|102400`, `pww|GM|102400|1`, `overhead|GM`.
    /// Contains no whitespace (platform names are single tokens), so it
    /// can be a field in a space-separated journal line.
    pub fn canonical(&self) -> String {
        match self {
            CampaignKey::Polling {
                platform,
                msg_bytes,
            } => format!("polling|{platform}|{msg_bytes}"),
            CampaignKey::Pww {
                platform,
                msg_bytes,
                test_in_work,
            } => format!("pww|{platform}|{msg_bytes}|{}", u8::from(*test_in_work)),
            CampaignKey::Overhead { platform } => format!("overhead|{platform}"),
        }
    }
}

/// The campaigns a figure's data comes from.
pub fn required_campaigns(id: FigureId) -> Vec<CampaignKey> {
    let kb100 = 100 * 1024;
    let polling = |t: &Transport, size| CampaignKey::Polling {
        platform: t.name(),
        msg_bytes: size,
    };
    let pww = |t: &Transport, size, test| CampaignKey::Pww {
        platform: t.name(),
        msg_bytes: size,
        test_in_work: test,
    };
    match id {
        FigureId::Fig04 | FigureId::Fig05 => PAPER_SIZES
            .iter()
            .map(|&s| polling(&Transport::Portals, s))
            .collect(),
        FigureId::Fig06 | FigureId::Fig07 => PAPER_SIZES
            .iter()
            .map(|&s| pww(&Transport::Portals, s, false))
            .collect(),
        FigureId::Fig08 => vec![
            polling(&Transport::Gm, kb100),
            polling(&Transport::Portals, kb100),
        ],
        FigureId::Fig09 | FigureId::Fig10 | FigureId::Fig11 => vec![
            pww(&Transport::Gm, kb100, false),
            pww(&Transport::Portals, kb100, false),
        ],
        FigureId::Fig12 => vec![CampaignKey::Overhead {
            platform: Transport::Portals.name(),
        }],
        FigureId::Fig13 => vec![CampaignKey::Overhead {
            platform: Transport::Gm.name(),
        }],
        FigureId::Fig14 => PAPER_SIZES
            .iter()
            .map(|&s| polling(&Transport::Gm, s))
            .collect(),
        FigureId::Fig15 => PAPER_SIZES
            .iter()
            .map(|&s| polling(&Transport::Portals, s))
            .collect(),
        FigureId::Fig16 => vec![
            polling(&Transport::Gm, kb100),
            pww(&Transport::Gm, kb100, false),
        ],
        FigureId::Fig17 => vec![
            polling(&Transport::Gm, kb100),
            pww(&Transport::Gm, kb100, true),
            pww(&Transport::Gm, kb100, false),
        ],
    }
}

/// Resolve a campaign key's platform name back to a preset transport.
/// Custom transports never appear in figure campaigns, so presets suffice.
fn preset_transport(platform: &str) -> Transport {
    match platform {
        "GM" => Transport::Gm,
        "Portals" => Transport::Portals,
        "EMP" => Transport::Emp,
        other => unreachable!("figure campaigns only use preset platforms, got {other}"),
    }
}

/// A planned campaign: its config resolved once, its x axis materialized.
struct PlannedCampaign {
    key: CampaignKey,
    cfg: MethodConfig,
    hw: comb_hw::HwConfig,
    xs: Vec<u64>,
}

impl PlannedCampaign {
    /// The cell-cache method tag for this campaign's points.
    fn cell_method(&self) -> CellMethod {
        match self.key {
            CampaignKey::Polling { .. } => CellMethod::Polling,
            CampaignKey::Pww { test_in_work, .. } => CellMethod::Pww { test_in_work },
            CampaignKey::Overhead { .. } => CellMethod::Pww {
                test_in_work: false,
            },
        }
    }
}

/// Cell-cache activity attributed to one campaign (or one figure, summed
/// over its campaigns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounts {
    /// Cells served from the cache (memory or disk tier).
    pub hits: u64,
    /// Cells computed fresh.
    pub misses: u64,
    /// Cells that joined an identical in-flight computation.
    pub joined: u64,
}

impl CacheCounts {
    fn add(&mut self, other: CacheCounts) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.joined += other.joined;
    }
}

/// Per-campaign [hits, misses, joined] tallies a prepare pass collects
/// while its worker pool runs (plain-code fold into [`CacheCounts`]
/// afterwards).
fn new_tallies(n: usize) -> Vec<[AtomicU64; 3]> {
    (0..n).map(|_| Default::default()).collect()
}

fn tally(tallies: &[[AtomicU64; 3]], campaign: usize, outcome: CacheOutcome) {
    let slot = match outcome {
        CacheOutcome::HitMem | CacheOutcome::HitDisk => 0,
        CacheOutcome::Miss | CacheOutcome::Uncached => 1,
        CacheOutcome::Joined => 2,
    };
    tallies[campaign][slot].fetch_add(1, Ordering::Relaxed);
}

/// What a checkpointed prepare pass did (for `--resume` progress lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeStats {
    /// Cells restored from the journal without simulating.
    pub restored: usize,
    /// Fresh cells executed (and journaled) by this pass.
    pub executed: usize,
}

/// Caches sweep results so figures sharing a campaign run it once.
///
/// Two ways to fill the cache:
/// * [`Campaigns::prepare`] — the plan → execute path: collect every
///   campaign the requested figures need, dedup, flatten all their points
///   into one work list and run it through the shared worker pool. This
///   keeps all cores busy across campaign boundaries instead of
///   parallelizing (or serializing) one sweep at a time.
/// * the lazy accessors used by [`generate`] — any campaign not prepared
///   is swept on first use, so `generate` works standalone too.
pub struct Campaigns {
    fidelity: Fidelity,
    // Each campaign is a Vec over x-axis points; each point a Vec over
    // replicates. Single-shot campaigns store singletons, so the legacy
    // path is the `n = 1` case of the replicate-aware one.
    polling: HashMap<(String, u64), Vec<Vec<PollingSample>>>,
    pww: HashMap<(String, u64, bool), Vec<Vec<PwwSample>>>,
    overhead: HashMap<String, Vec<Vec<PwwSample>>>,
    /// Per-campaign convergence flags (one per x point) from the adaptive
    /// pass; absent for single-shot campaigns.
    converged: HashMap<String, Vec<bool>>,
    /// Optional content-addressed cell cache; when set, both prepare
    /// paths resolve every cell through it (identical cells dedup
    /// in-process via single-flight and across runs via the disk store).
    cell_cache: Option<Arc<CellCache>>,
    /// Cache activity per campaign canonical key, accumulated by the
    /// prepare passes (empty without a cache).
    cache_log: HashMap<String, CacheCounts>,
}

impl Campaigns {
    /// Empty cache at the given fidelity.
    pub fn new(fidelity: Fidelity) -> Campaigns {
        Campaigns {
            fidelity,
            polling: HashMap::new(),
            pww: HashMap::new(),
            overhead: HashMap::new(),
            converged: HashMap::new(),
            cell_cache: None,
            cache_log: HashMap::new(),
        }
    }

    /// Route every prepared cell through a content-addressed cache.
    /// Results are unchanged — cached campaigns export byte-identically —
    /// only wall time and the per-figure cache tallies differ.
    pub fn set_cache(&mut self, cache: Arc<CellCache>) {
        self.cell_cache = Some(cache);
    }

    /// Cache activity attributed to one figure: the sum over its required
    /// campaigns of the tallies recorded while preparing them. `None`
    /// when no cache is attached; campaigns shared between figures count
    /// toward each figure that needs them.
    pub fn figure_cache_counts(&self, id: FigureId) -> Option<CacheCounts> {
        self.cell_cache.as_ref()?;
        let mut total = CacheCounts::default();
        for key in required_campaigns(id) {
            if let Some(c) = self.cache_log.get(&key.canonical()) {
                total.add(*c);
            }
        }
        Some(total)
    }

    /// Fold one prepare pass's per-campaign tallies into the log.
    fn absorb_tallies(&mut self, plan: &[PlannedCampaign], tallies: &[[AtomicU64; 3]]) {
        if self.cell_cache.is_none() {
            return;
        }
        for (pc, t) in plan.iter().zip(tallies) {
            self.cache_log
                .entry(pc.key.canonical())
                .or_default()
                .add(CacheCounts {
                    hits: t[0].load(Ordering::Relaxed),
                    misses: t[1].load(Ordering::Relaxed),
                    joined: t[2].load(Ordering::Relaxed),
                });
        }
    }

    /// The campaigns `ids` need that are not in the cache yet, deduped,
    /// in first-need order.
    pub fn plan(&self, ids: &[FigureId]) -> Vec<CampaignKey> {
        let mut seen = HashSet::new();
        let mut ordered = Vec::new();
        for &id in ids {
            for key in required_campaigns(id) {
                if self.is_cached(&key) || !seen.insert(key.clone()) {
                    continue;
                }
                ordered.push(key);
            }
        }
        ordered
    }

    fn is_cached(&self, key: &CampaignKey) -> bool {
        match key {
            CampaignKey::Polling {
                platform,
                msg_bytes,
            } => self.polling.contains_key(&(platform.clone(), *msg_bytes)),
            CampaignKey::Pww {
                platform,
                msg_bytes,
                test_in_work,
            } => self
                .pww
                .contains_key(&(platform.clone(), *msg_bytes, *test_in_work)),
            CampaignKey::Overhead { platform } => self.overhead.contains_key(platform),
        }
    }

    fn plan_campaign(&self, key: CampaignKey) -> PlannedCampaign {
        let f = &self.fidelity;
        let (cfg, xs) = match &key {
            CampaignKey::Polling {
                platform,
                msg_bytes,
            } => (
                f.method_config(preset_transport(platform), *msg_bytes),
                log_spaced(POLL_RANGE.0, POLL_RANGE.1, f.per_decade),
            ),
            CampaignKey::Pww {
                platform,
                msg_bytes,
                ..
            } => (
                f.method_config(preset_transport(platform), *msg_bytes),
                log_spaced(PWW_RANGE.0, PWW_RANGE.1, f.per_decade),
            ),
            CampaignKey::Overhead { platform } => (
                f.method_config(preset_transport(platform), 100 * 1024),
                lin_spaced(OVERHEAD_RANGE.0, OVERHEAD_RANGE.1, OVERHEAD_POINTS),
            ),
        };
        let hw = cfg.transport.config();
        PlannedCampaign { key, cfg, hw, xs }
    }

    /// Plan → execute: sweep every campaign the given figures need that is
    /// not already cached, running *all* of their points through one
    /// shared worker pool ([`Fidelity::jobs`] workers, `0` = auto).
    ///
    /// Results land in the same cache the lazy accessors fill, in the same
    /// per-campaign input order, so a prepared [`generate`] emits datasets
    /// byte-identical to unprepared serial generation.
    pub fn prepare(&mut self, ids: &[FigureId]) -> Result<(), RunError> {
        let plan: Vec<PlannedCampaign> = self
            .plan(ids)
            .into_iter()
            .map(|key| self.plan_campaign(key))
            .collect();

        // Flatten every campaign's points into one work list so stealing
        // crosses campaign boundaries: without this, each sweep's tail
        // (one long-running small-interval point) would idle the pool.
        let points: Vec<(usize, u64)> = plan
            .iter()
            .enumerate()
            .flat_map(|(c, pc)| pc.xs.iter().map(move |&x| (c, x)))
            .collect();

        let tallies = new_tallies(plan.len());
        let cache = self.cell_cache.clone();
        let results = run_ordered(self.fidelity.jobs, &points, |&(c, x)| {
            let pc = &plan[c];
            let (sample, outcome) =
                run_cell_cached(cache.as_deref(), &pc.hw, &pc.cfg, pc.cell_method(), x)?;
            tally(&tallies, c, outcome);
            Ok(sample)
        })?;
        self.absorb_tallies(&plan, &tallies);

        // Points were emitted campaign-by-campaign and run_ordered keeps
        // input order, so slicing the flat results reassembles each sweep.
        let mut rest = results;
        for pc in plan {
            let tail = rest.split_off(pc.xs.len());
            let samples = std::mem::replace(&mut rest, tail);
            self.store_campaign(pc.key, samples.into_iter().map(|s| vec![s]).collect());
        }
        Ok(())
    }

    /// [`Campaigns::prepare`] with a checkpoint journal: cells already in
    /// `state` are restored without simulating, fresh cells run through
    /// the shared pool and are journaled **as they finish**, so an
    /// interruption at any moment loses at most the cells still in
    /// flight. Restored samples are bit-exact (see [`crate::checkpoint`]),
    /// so a resumed campaign's exports are byte-identical to an
    /// uninterrupted run at any `--jobs`.
    ///
    /// `stop_after` caps how many *fresh* cells run before the pass
    /// returns [`comb_core::ErrorKind::Interrupted`] — the hook the
    /// crash/resume tests use to interrupt a campaign at a deterministic
    /// spot. `None` runs everything.
    pub fn prepare_checkpointed(
        &mut self,
        ids: &[FigureId],
        journal: &Journal,
        state: &CheckpointState,
        stop_after: Option<usize>,
    ) -> Result<ResumeStats, CombError> {
        let plan: Vec<PlannedCampaign> = self
            .plan(ids)
            .into_iter()
            .map(|key| self.plan_campaign(key))
            .collect();
        let canon: Vec<String> = plan.iter().map(|pc| pc.key.canonical()).collect();
        let points: Vec<(usize, u64)> = plan
            .iter()
            .enumerate()
            .flat_map(|(c, pc)| pc.xs.iter().map(move |&x| (c, x)))
            .collect();

        // Restored cells come straight from the journal; the rest are
        // fresh work for the pool. `slots` remembers where each fresh
        // cell's result belongs so reassembly stays in input order.
        let mut results: Vec<Option<PointSample>> = Vec::with_capacity(points.len());
        let mut fresh: Vec<(usize, u64)> = Vec::new();
        let mut fresh_slots: Vec<usize> = Vec::new();
        for &(c, x) in &points {
            match state.get(&canon[c], x) {
                Some(s) => results.push(Some(s.clone())),
                None => {
                    fresh_slots.push(results.len());
                    results.push(None);
                    fresh.push((c, x));
                }
            }
        }
        let restored = points.len() - fresh.len();
        let budget = stop_after.unwrap_or(usize::MAX);
        let truncated = fresh.len() > budget;
        let run_now = &fresh[..fresh.len().min(budget)];

        let tallies = new_tallies(plan.len());
        let cache = self.cell_cache.clone();
        let outcomes = run_cells(
            self.fidelity.jobs,
            run_now,
            RetryPolicy::none(),
            |&(c, x), _| {
                let pc = &plan[c];
                // Cache hits still pass through `journal.record`, so a
                // checkpoint journal stays complete (and resumable on a
                // machine without the cache) no matter how cells resolve.
                let (sample, outcome) =
                    run_cell_cached(cache.as_deref(), &pc.hw, &pc.cfg, pc.cell_method(), x)
                        .map_err(|e| {
                            CombError::from(e).with_cell(format!("{} @ x={x}", canon[c]))
                        })?;
                tally(&tallies, c, outcome);
                journal.record(&canon[c], x, &sample)?;
                Ok(sample)
            },
        );
        self.absorb_tallies(&plan, &tallies);

        let mut first_err: Option<CombError> = None;
        for (&slot, outcome) in fresh_slots.iter().zip(outcomes) {
            match outcome {
                CellOutcome::Done { value, .. } => results[slot] = Some(value),
                CellOutcome::Failed { error, .. } => {
                    // Lowest input index wins, so the reported error is
                    // deterministic at any job count.
                    if first_err.is_none() {
                        first_err = Some(error);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        if truncated {
            return Err(CombError::interrupted(format!(
                "campaign stopped after {budget} fresh cells ({} of {} journaled); \
                 rerun with the same checkpoint to resume",
                restored + budget,
                points.len(),
            )));
        }

        // Reassemble campaign-by-campaign, exactly as `prepare` does.
        let mut iter = results.into_iter();
        for pc in plan {
            let samples: Vec<Vec<PointSample>> = iter
                .by_ref()
                .take(pc.xs.len())
                .map(|s| {
                    vec![s.unwrap_or_else(|| unreachable!("every cell is restored or executed"))]
                })
                .collect();
            self.store_campaign(pc.key, samples);
        }
        Ok(ResumeStats {
            restored,
            executed: run_now.len(),
        })
    }

    /// Adaptive prepare: run every campaign the given figures need with
    /// seeded per-replicate perturbation, repeating each cell until the
    /// stopping rule in [`Fidelity::adaptive`] settles it. Cells from all
    /// campaigns share one round-based pool pass, and the resulting
    /// replicate lists feed the CI bands the series builders attach.
    ///
    /// With a journal, replicate `r` of cell `(campaign, x)` is keyed
    /// [`replicate_key`]`(canonical, r)`; previously journaled replicates
    /// are restored without simulating and fresh ones are recorded by the
    /// coordinator in schedule order, so the journal an interrupted run
    /// leaves is a byte prefix of an uninterrupted run's (see
    /// [`run_adaptive_cells`]). `stop_after` caps fresh replicates, then
    /// the pass returns [`comb_core::ErrorKind::Interrupted`].
    pub fn prepare_adaptive(
        &mut self,
        ids: &[FigureId],
        tracer: &Tracer,
        journal: Option<(&Journal, &CheckpointState)>,
        stop_after: Option<usize>,
    ) -> Result<AdaptiveStats, CombError> {
        let Some(params) = self.fidelity.adaptive else {
            return Err(CombError::usage(
                "prepare_adaptive needs Fidelity::adaptive set (see --replicates)",
            ));
        };
        let plan: Vec<PlannedCampaign> = self
            .plan(ids)
            .into_iter()
            .map(|key| self.plan_campaign(key))
            .collect();
        let canon: Vec<String> = plan.iter().map(|pc| pc.key.canonical()).collect();
        let points: Vec<(usize, u64)> = plan
            .iter()
            .enumerate()
            .flat_map(|(c, pc)| pc.xs.iter().map(move |&x| (c, x)))
            .collect();
        let cells: Vec<AdaptiveCell> = points
            .iter()
            .map(|&(c, x)| AdaptiveCell {
                hw: plan[c].hw.clone(),
                cfg: plan[c].cfg.clone(),
                method: plan[c].cell_method(),
                x,
            })
            .collect();

        let cache = self.cell_cache.clone();
        let (estimates, stats) = run_adaptive_cells(
            self.fidelity.jobs,
            &cells,
            params,
            cache.as_deref(),
            tracer,
            RetryPolicy::none(),
            stop_after,
            |ci, rep| {
                let (c, x) = points[ci];
                journal.and_then(|(_, state)| state.get(&replicate_key(&canon[c], rep), x).cloned())
            },
            |ci, rep, sample| {
                let (c, x) = points[ci];
                match journal {
                    Some((j, _)) => j.record(&replicate_key(&canon[c], rep), x, sample),
                    None => Ok(()),
                }
            },
        )?;

        // Reassemble campaign-by-campaign, exactly as `prepare` does —
        // but each point keeps its whole replicate list.
        let mut iter = estimates.into_iter();
        for (pc, canonical) in plan.into_iter().zip(canon) {
            let ests: Vec<comb_core::CellEstimate> = iter.by_ref().take(pc.xs.len()).collect();
            self.converged
                .insert(canonical, ests.iter().map(|e| e.converged).collect());
            self.store_campaign(pc.key, ests.into_iter().map(|e| e.samples).collect());
        }
        Ok(stats)
    }

    /// File one campaign's finished points (replicate lists) under its
    /// key, unwrapping the method-specific sample type.
    fn store_campaign(&mut self, key: CampaignKey, points: Vec<Vec<PointSample>>) {
        let as_polling = |reps: Vec<PointSample>| -> Vec<PollingSample> {
            reps.into_iter()
                .map(|r| match r {
                    PointSample::Polling(s) => s,
                    PointSample::Pww(_) => unreachable!("polling campaign"),
                })
                .collect()
        };
        let as_pww = |reps: Vec<PointSample>| -> Vec<PwwSample> {
            reps.into_iter()
                .map(|r| match r {
                    PointSample::Pww(s) => s,
                    PointSample::Polling(_) => unreachable!("pww campaign"),
                })
                .collect()
        };
        match key {
            CampaignKey::Polling {
                platform,
                msg_bytes,
            } => {
                self.polling.insert(
                    (platform, msg_bytes),
                    points.into_iter().map(as_polling).collect(),
                );
            }
            CampaignKey::Pww {
                platform,
                msg_bytes,
                test_in_work,
            } => {
                self.pww.insert(
                    (platform, msg_bytes, test_in_work),
                    points.into_iter().map(as_pww).collect(),
                );
            }
            CampaignKey::Overhead { platform } => {
                self.overhead
                    .insert(platform, points.into_iter().map(as_pww).collect());
            }
        }
    }

    /// Per-point convergence flags of an adaptively prepared campaign
    /// (true = CI target met, false = replicate cap). `None` for
    /// single-shot campaigns.
    pub fn campaign_converged(&self, key: &CampaignKey) -> Option<&[bool]> {
        self.converged.get(&key.canonical()).map(Vec::as_slice)
    }

    fn polling(&mut self, t: &Transport, size: u64) -> Result<&[Vec<PollingSample>], RunError> {
        let key = (t.name(), size);
        if !self.polling.contains_key(&key) {
            let cfg = self.fidelity.method_config(t.clone(), size);
            let xs = log_spaced(POLL_RANGE.0, POLL_RANGE.1, self.fidelity.per_decade);
            let samples = polling_sweep(&cfg, &xs)?;
            self.polling
                .insert(key.clone(), samples.into_iter().map(|s| vec![s]).collect());
        }
        Ok(&self.polling[&key])
    }

    fn pww(&mut self, t: &Transport, size: u64, test: bool) -> Result<&[Vec<PwwSample>], RunError> {
        let key = (t.name(), size, test);
        if !self.pww.contains_key(&key) {
            let cfg = self.fidelity.method_config(t.clone(), size);
            let xs = log_spaced(PWW_RANGE.0, PWW_RANGE.1, self.fidelity.per_decade);
            let samples = pww_sweep(&cfg, &xs, test)?;
            self.pww
                .insert(key.clone(), samples.into_iter().map(|s| vec![s]).collect());
        }
        Ok(&self.pww[&key])
    }

    fn overhead(&mut self, t: &Transport) -> Result<&[Vec<PwwSample>], RunError> {
        let key = t.name();
        if !self.overhead.contains_key(&key) {
            let cfg = self.fidelity.method_config(t.clone(), 100 * 1024);
            let xs = lin_spaced(OVERHEAD_RANGE.0, OVERHEAD_RANGE.1, OVERHEAD_POINTS);
            let samples = pww_sweep(&cfg, &xs, false)?;
            self.overhead
                .insert(key.clone(), samples.into_iter().map(|s| vec![s]).collect());
        }
        Ok(&self.overhead[&key])
    }
}

fn size_label(size: u64) -> String {
    format!("{} KB", size / 1024)
}

/// Confidence level of the CI bands attached to replicate campaigns.
const BAND_CONFIDENCE: f64 = 0.95;

/// Build one series from replicate lists: each point's coordinates are
/// the means of `x`/`y` over that cell's replicates, and when *every*
/// cell has at least two replicates (an adaptive campaign — the floor is
/// two) the series carries a 95% CI band on y. A single-replicate cell
/// feeds the mean untouched ([`Welford`] with `n = 1` is bit-exact), so
/// legacy campaigns produce byte-identical series with no bands.
fn replicate_series<T>(
    label: &str,
    cells: &[Vec<T>],
    x: impl Fn(&T) -> f64,
    y: impl Fn(&T) -> f64,
) -> Series {
    let mut s = Series::new(label, std::iter::empty::<(f64, f64)>());
    let banded = !cells.is_empty() && cells.iter().all(|reps| reps.len() >= 2);
    for reps in cells {
        let mut wx = Welford::new();
        let mut wy = Welford::new();
        for r in reps {
            wx.push(x(r));
            wy.push(y(r));
        }
        s.points.push(crate::series::Point {
            x: wx.mean(),
            y: wy.mean(),
        });
        if banded {
            if let Some(ci) = mean_ci(&wy, BAND_CONFIDENCE) {
                s.bands.push(CiBand {
                    lo: ci.lo(),
                    hi: ci.hi(),
                    n: ci.n,
                });
            }
        }
    }
    // A band for every point or none at all — a partially banded series
    // would desynchronize the CSV columns.
    if s.bands.len() != s.points.len() {
        s.bands.clear();
    }
    s
}

fn polling_series(
    label: &str,
    s: &[Vec<PollingSample>],
    y: impl Fn(&PollingSample) -> f64,
) -> Series {
    replicate_series(label, s, |p| p.poll_interval as f64, y)
}

fn pww_series(label: &str, s: &[Vec<PwwSample>], y: impl Fn(&PwwSample) -> f64) -> Series {
    replicate_series(label, s, |p| p.work_interval as f64, y)
}

fn avail_vs_bw_series(label: &str, s: &[Vec<PollingSample>]) -> Series {
    replicate_series(label, s, |p| p.availability, |p| p.bandwidth_mbs)
}

fn pww_avail_vs_bw_series(label: &str, s: &[Vec<PwwSample>]) -> Series {
    replicate_series(label, s, |p| p.availability, |p| p.bandwidth_mbs)
}

/// Regenerate one figure, reusing any sweeps already in `campaigns`.
pub fn generate(id: FigureId, campaigns: &mut Campaigns) -> Result<Dataset, RunError> {
    let mut ds = Dataset {
        id: id.id(),
        title: id.title().to_string(),
        x_label: "Poll Interval (loop iterations)".into(),
        y_label: String::new(),
        log_x: true,
        series: Vec::new(),
    };
    let kb100 = 100 * 1024;
    match id {
        FigureId::Fig04 | FigureId::Fig05 => {
            ds.y_label = if id == FigureId::Fig04 {
                "CPU Availability (fraction to user)".into()
            } else {
                "Bandwidth (MB/s)".into()
            };
            for &size in &PAPER_SIZES {
                let s = campaigns.polling(&Transport::Portals, size)?;
                ds.series.push(if id == FigureId::Fig04 {
                    polling_series(&size_label(size), s, |p| p.availability)
                } else {
                    polling_series(&size_label(size), s, |p| p.bandwidth_mbs)
                });
            }
        }
        FigureId::Fig06 | FigureId::Fig07 => {
            ds.x_label = "Work Interval (loop iterations)".into();
            ds.y_label = if id == FigureId::Fig06 {
                "CPU Availability (fraction to user)".into()
            } else {
                "Bandwidth (MB/s)".into()
            };
            for &size in &PAPER_SIZES {
                let s = campaigns.pww(&Transport::Portals, size, false)?;
                ds.series.push(if id == FigureId::Fig06 {
                    pww_series(&size_label(size), s, |p| p.availability)
                } else {
                    pww_series(&size_label(size), s, |p| p.bandwidth_mbs)
                });
            }
        }
        FigureId::Fig08 => {
            ds.y_label = "Bandwidth (MB/s)".into();
            for t in [Transport::Gm, Transport::Portals] {
                let name = t.name();
                let s = campaigns.polling(&t, kb100)?;
                ds.series
                    .push(polling_series(&name, s, |p| p.bandwidth_mbs));
            }
        }
        FigureId::Fig09 | FigureId::Fig10 | FigureId::Fig11 => {
            ds.x_label = "Work Interval (loop iterations)".into();
            ds.y_label = match id {
                FigureId::Fig09 => "Bandwidth (MB/s)".into(),
                FigureId::Fig10 => "Time to Post (us)".into(),
                _ => "Time Per Message (us)".into(),
            };
            for t in [Transport::Gm, Transport::Portals] {
                let name = t.name();
                let s = campaigns.pww(&t, kb100, false)?;
                ds.series.push(match id {
                    FigureId::Fig09 => pww_series(&name, s, |p| p.bandwidth_mbs),
                    FigureId::Fig10 => pww_series(&name, s, |p| p.post_per_msg.as_micros_f64()),
                    _ => pww_series(&name, s, |p| p.wait_per_msg.as_micros_f64()),
                });
            }
        }
        FigureId::Fig12 | FigureId::Fig13 => {
            ds.x_label = "Work Interval (loop iterations)".into();
            ds.y_label = "Average Time Per Cycle (us)".into();
            ds.log_x = false;
            let t = if id == FigureId::Fig12 {
                Transport::Portals
            } else {
                Transport::Gm
            };
            let s = campaigns.overhead(&t)?;
            ds.series.push(pww_series("Work with MH", s, |p| {
                p.work_with_mh.as_micros_f64()
            }));
            ds.series
                .push(pww_series("Work Only", s, |p| p.work_only.as_micros_f64()));
        }
        FigureId::Fig14 | FigureId::Fig15 => {
            ds.x_label = "CPU Available to User (fraction of time)".into();
            ds.y_label = "Bandwidth (MB/s)".into();
            ds.log_x = false;
            let t = if id == FigureId::Fig14 {
                Transport::Gm
            } else {
                Transport::Portals
            };
            for &size in &PAPER_SIZES {
                let s = campaigns.polling(&t, size)?;
                ds.series.push(avail_vs_bw_series(&size_label(size), s));
            }
        }
        FigureId::Fig16 | FigureId::Fig17 => {
            ds.x_label = "CPU Available to User (fraction of time)".into();
            ds.y_label = "Bandwidth (MB/s)".into();
            ds.log_x = false;
            let poll = campaigns.polling(&Transport::Gm, kb100)?;
            ds.series.push(avail_vs_bw_series("Poll", poll));
            if id == FigureId::Fig17 {
                let tested = campaigns.pww(&Transport::Gm, kb100, true)?;
                ds.series.push(pww_avail_vs_bw_series("PWW + Test", tested));
            }
            let pww = campaigns.pww(&Transport::Gm, kb100, false)?;
            ds.series.push(pww_avail_vs_bw_series("PWW", pww));
        }
    }
    Ok(ds)
}

/// Regenerate every data figure, sharing sweeps across figures. All
/// campaigns are planned up front and executed through the shared worker
/// pool ([`Fidelity::jobs`], `0` = auto).
pub fn generate_all(fidelity: Fidelity) -> Result<Vec<Dataset>, RunError> {
    let mut campaigns = Campaigns::new(fidelity);
    campaigns.prepare(&FigureId::ALL)?;
    FigureId::ALL
        .iter()
        .map(|&id| generate(id, &mut campaigns))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_ids_roundtrip_through_strings() {
        for id in FigureId::ALL {
            let s = id.id();
            assert_eq!(s.parse::<FigureId>().unwrap(), id);
        }
        assert_eq!("Figure 11".parse::<FigureId>().unwrap(), FigureId::Fig11);
        assert_eq!("5".parse::<FigureId>().unwrap(), FigureId::Fig05);
        assert!("fig03".parse::<FigureId>().is_err());
        assert!("banana".parse::<FigureId>().is_err());
    }

    #[test]
    fn titles_and_descriptions_are_nonempty() {
        for id in FigureId::ALL {
            assert!(!id.title().is_empty());
            assert!(!id.description().is_empty());
        }
    }

    #[test]
    fn fig12_generates_two_series_linear_axis() {
        let mut c = Campaigns::new(Fidelity::quick());
        let ds = generate(FigureId::Fig12, &mut c).unwrap();
        assert_eq!(ds.series.len(), 2);
        assert!(!ds.log_x);
        assert_eq!(ds.series[0].label, "Work with MH");
        assert!(ds.point_count() > 0);
    }

    #[test]
    fn campaigns_cache_is_shared_across_figures() {
        let mut c = Campaigns::new(Fidelity::quick());
        // Fig 13 and Fig 16 both need GM sweeps; fig13's overhead campaign
        // is distinct, but the polling campaign must be computed once.
        let _ = generate(FigureId::Fig13, &mut c).unwrap();
        assert_eq!(c.overhead.len(), 1);
        let before = c.polling.len();
        assert_eq!(before, 0);
    }

    #[test]
    fn plan_dedups_campaigns_across_figures() {
        let c = Campaigns::new(Fidelity::smoke());
        // Figures 4 and 5 share all four Portals polling campaigns; 15
        // shares them too.
        let plan = c.plan(&[FigureId::Fig04, FigureId::Fig05, FigureId::Fig15]);
        assert_eq!(plan.len(), PAPER_SIZES.len());
        // The whole paper needs exactly these campaigns:
        // polling: Portals x4 sizes + GM x4 sizes (figs 8/16/17 reuse 100 KB)
        // pww: Portals x4 sizes + GM 100 KB plain + GM 100 KB test-in-work
        //      (fig 9-11's Portals 100 KB is one of the four sizes)
        // overhead: Portals, GM
        let full = c.plan(&FigureId::ALL);
        assert_eq!(full.len(), 8 + 6 + 2, "campaign plan: {full:?}");
    }

    #[test]
    fn prepare_fills_cache_and_generate_uses_it() {
        let mut c = Campaigns::new(Fidelity::smoke());
        c.prepare(&[FigureId::Fig12]).unwrap();
        assert_eq!(c.overhead.len(), 1);
        // Generating now must not add campaigns — the data is cached.
        let ds = generate(FigureId::Fig12, &mut c).unwrap();
        assert_eq!(ds.series.len(), 2);
        assert_eq!(c.overhead.len(), 1);
        assert!(c.polling.is_empty() && c.pww.is_empty());
        // Re-planning the same figure is now a no-op.
        assert!(c.plan(&[FigureId::Fig12]).is_empty());
    }

    #[test]
    fn cached_prepare_is_byte_identical_and_warms() {
        let dir = std::env::temp_dir().join("comb_figures_cache_test");
        let _ = std::fs::remove_dir_all(&dir);
        let ids = [FigureId::Fig13];

        let mut plain = Campaigns::new(Fidelity::smoke());
        plain.prepare(&ids).unwrap();
        let plain_csv = generate(FigureId::Fig13, &mut plain).unwrap().to_csv();
        assert!(
            plain.figure_cache_counts(FigureId::Fig13).is_none(),
            "no cache attached, no tallies"
        );

        let mut cold = Campaigns::new(Fidelity::smoke());
        cold.set_cache(Arc::new(CellCache::new(
            &dir,
            comb_core::CacheMode::ReadWrite,
        )));
        cold.prepare(&ids).unwrap();
        let cold_csv = generate(FigureId::Fig13, &mut cold).unwrap().to_csv();
        assert_eq!(plain_csv, cold_csv, "cached run must be byte-identical");
        let cold_counts = cold.figure_cache_counts(FigureId::Fig13).unwrap();
        assert_eq!(cold_counts.hits, 0);
        assert!(cold_counts.misses > 0);

        // A fresh process warms entirely from disk, byte-identically.
        let mut warm = Campaigns::new(Fidelity::smoke());
        warm.set_cache(Arc::new(CellCache::new(
            &dir,
            comb_core::CacheMode::ReadWrite,
        )));
        warm.prepare(&ids).unwrap();
        let warm_csv = generate(FigureId::Fig13, &mut warm).unwrap().to_csv();
        assert_eq!(plain_csv, warm_csv, "warm run must be byte-identical");
        let warm_counts = warm.figure_cache_counts(FigureId::Fig13).unwrap();
        assert_eq!(warm_counts.misses, 0, "fully warm");
        assert_eq!(warm_counts.hits, cold_counts.misses);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn adaptive_prepare_attaches_bands_and_stops_early() {
        let params = AdaptiveParams {
            replicates: 5,
            ci_target: 0.25,
            perturb_seed: 77,
        };
        let mut c = Campaigns::new(Fidelity::smoke().with_adaptive(params));
        let stats = c
            .prepare_adaptive(&[FigureId::Fig13], &Tracer::default(), None, None)
            .unwrap();
        assert!(stats.replicates >= 2 * stats.cells, "two-replicate floor");
        assert!(
            stats.replicates < 5 * stats.cells,
            "a loose CI target must settle some cells below the cap \
             ({} replicates over {} cells)",
            stats.replicates,
            stats.cells,
        );
        assert_eq!(stats.converged + stats.capped, stats.cells);
        let key = CampaignKey::Overhead {
            platform: Transport::Gm.name(),
        };
        assert_eq!(
            c.campaign_converged(&key).map(<[bool]>::len),
            Some(OVERHEAD_POINTS)
        );
        let ds = generate(FigureId::Fig13, &mut c).unwrap();
        for s in &ds.series {
            assert_eq!(s.bands.len(), s.points.len(), "every point gets a band");
            for (p, b) in s.points.iter().zip(&s.bands) {
                assert!(b.lo <= p.y && p.y <= b.hi);
                assert!(b.n >= 2);
            }
        }
        assert!(ds.to_csv().starts_with("# fig13"));
        assert!(ds.to_csv().contains("series,x,y,y_lo,y_hi,n"));
        // Without adaptive params the call is a usage error.
        let mut plain = Campaigns::new(Fidelity::smoke());
        let err = plain
            .prepare_adaptive(&[FigureId::Fig13], &Tracer::default(), None, None)
            .unwrap_err();
        assert_eq!(err.kind, comb_core::ErrorKind::Usage);
    }

    #[test]
    fn prepared_generation_matches_lazy_generation() {
        let ids = [FigureId::Fig16, FigureId::Fig17];
        let mut lazy = Campaigns::new(Fidelity::smoke().with_jobs(1));
        let lazy_ds: Vec<_> = ids
            .iter()
            .map(|&i| generate(i, &mut lazy).unwrap())
            .collect();
        let mut prepped = Campaigns::new(Fidelity::smoke());
        prepped.prepare(&ids).unwrap();
        let prep_ds: Vec<_> = ids
            .iter()
            .map(|&i| generate(i, &mut prepped).unwrap())
            .collect();
        for (a, b) in lazy_ds.iter().zip(&prep_ds) {
            assert_eq!(a.to_csv(), b.to_csv(), "datasets diverge for {}", a.id);
        }
    }
}
