//! Portals-like kernel NIC (interrupt-driven, no OS-bypass).
//!
//! Transmit: the kernel send path runs on the host CPU — each packet steals
//! `tx_host_per_packet` from the application — then packets serialize
//! through the injection station.
//!
//! Receive: every packet raises an interrupt. The ISR costs
//! `rx_per_packet + bytes / rx_bandwidth` (fixed overhead plus the
//! kernel-to-user copy), all stolen from the host CPU, and ISRs serialize on
//! the [`InterruptController`]. Matching happens *in the kernel* at ISR time
//! (`rx_match_cost` on a message's first packet), so completed messages are
//! pushed straight to the library: this transport has full **application
//! offload** — communication progresses with no MPI calls — which is exactly
//! what the paper's PWW method detects for Portals (Fig 11).
//!
//! Unlike the bypass NIC, this transport can never use the fabric's
//! burst-batching fast path ([`Fabric::transmit_burst`]): each received
//! packet steals host CPU via its ISR *at its own arrival instant*, and
//! that theft must interleave with the application's concurrent compute
//! ([`Cpu::steal`] is relative to the clock when the interrupt fires). A
//! single delivery event at the last arrival could not replay those
//! per-packet preemptions, so the kernel NIC always takes one event per
//! packet.

use crate::config::{NicConfig, NicKind};
use crate::cpu::Cpu;
use crate::fault::FaultModel;
use crate::interrupt::InterruptController;
use crate::link::Station;
use crate::nic::{Nic, NicStats, NodeId, Packet, RxHandler, TxDone, WireMsg};
use crate::packet::packet_sizes;
use crate::pending::PendingSlab;
use crate::switch::Fabric;
use comb_sim::SimHandle;
use comb_trace::{Comp, TraceEvent, Tracer};
use parking_lot::Mutex;
use std::sync::Arc;

struct KernelInner {
    tx: Station,
    fault: FaultModel,
    isr: InterruptController,
    handler: Option<RxHandler>,
    /// Message handoffs parked until their post-ISR delivery event fires,
    /// so the event captures `(inner, slot)` instead of boxing the handler
    /// plus the message.
    pending_rx: PendingSlab<(RxHandler, NodeId, WireMsg)>,
    stats: NicStats,
}

/// See the module docs.
pub struct KernelNic {
    id: NodeId,
    handle: SimHandle,
    cfg: NicConfig,
    mtu: u64,
    fabric: Arc<Fabric>,
    cpu: Cpu,
    tracer: Tracer,
    inner: Arc<Mutex<KernelInner>>,
}

impl KernelNic {
    /// Build and attach a kernel NIC to `fabric`, stealing host time from
    /// `cpu`.
    pub fn attach(
        handle: &SimHandle,
        cfg: &NicConfig,
        fabric: &Arc<Fabric>,
        cpu: &Cpu,
    ) -> Arc<dyn Nic> {
        assert_eq!(cfg.kind, NicKind::Kernel, "config is not a kernel NIC");
        let mtu = fabric.link_config().mtu;
        let nic = Arc::new(KernelNic {
            id: NodeId(fabric.port_count()),
            handle: handle.clone(),
            cfg: cfg.clone(),
            mtu,
            fabric: Arc::clone(fabric),
            cpu: cpu.clone(),
            tracer: fabric.tracer().clone(),
            inner: Arc::new(Mutex::new(KernelInner {
                tx: Station::new(cfg.tx_per_packet, cfg.tx_bandwidth),
                fault: FaultModel::from_link(fabric.link_config(), fabric.port_count() as u64),
                isr: InterruptController::new(cpu.clone()),
                handler: None,
                pending_rx: PendingSlab::default(),
                stats: NicStats::default(),
            })),
        });
        let dyn_nic: Arc<dyn Nic> = nic;
        let assigned = fabric.attach(Arc::downgrade(&dyn_nic));
        assert_eq!(assigned, dyn_nic.node_id(), "fabric port/node id mismatch");
        dyn_nic
    }
}

impl Nic for KernelNic {
    fn node_id(&self) -> NodeId {
        self.id
    }

    fn kind(&self) -> NicKind {
        NicKind::Kernel
    }

    fn submit(&self, dst: NodeId, msg: WireMsg, on_tx_done: TxDone) {
        let now = self.handle.now();
        let sizes = packet_sizes(msg.bytes, self.mtu);
        let n = sizes.len();
        let comp = Comp::Nic(self.id.0 as u32);
        let msg_bytes = msg.bytes;
        let mut inner = self.inner.lock();
        inner.stats.msgs_tx += 1;
        inner.stats.bytes_tx += msg.bytes;
        inner.stats.packets_tx += n as u64;
        self.tracer.emit(now, comp, || TraceEvent::DmaStart {
            bytes: msg_bytes,
            packets: n as u64,
        });
        let tx_host = self.cfg.tx_host_per_packet;
        let stealer = self.cpu.stealer();
        let expedited = msg.expedited;
        if expedited {
            assert!(n == 1, "expedited messages must fit one packet");
            // Fault injection may drop a control message on the wire; the
            // sender's protocol timer is its only recovery path.
            if inner.fault.drop_control() {
                inner.stats.ctl_dropped += 1;
                let service = inner.tx.service_time(msg.bytes);
                self.tracer
                    .emit(now, comp, || TraceEvent::Dropped { bytes: msg_bytes });
                self.tracer
                    .emit(now + service, comp, || TraceEvent::DmaDone {
                        bytes: msg_bytes,
                    });
                self.handle.schedule_at(now + service, on_tx_done);
                return;
            }
        }
        let mut msg = Some(msg);
        for (i, bytes) in sizes.into_iter().enumerate() {
            let last = i + 1 == n;
            let service = inner.tx.service_time(bytes);
            let start_est = if expedited {
                now
            } else {
                inner.tx.busy_until().max(now)
            };
            let penalty = inner.fault.tx_penalty(start_est, service);
            if !penalty.is_zero() {
                self.tracer
                    .emit(start_est, comp, || TraceEvent::NicStall { penalty });
            }
            let (start, end) = if expedited {
                (now, now + service + penalty)
            } else {
                inner.tx.enqueue_with_extra(now, bytes, penalty)
            };
            if !tx_host.is_zero() {
                // The kernel send path for this packet runs on the host.
                // A `Stealer` plus the duration is three words, so the
                // per-packet steal event stays on the inline fast path.
                inner.stats.host_stolen += tx_host;
                let stealer = stealer.clone();
                self.handle
                    .schedule_at(start, move || stealer.steal(tx_host));
            }
            let pkt = Packet {
                bytes,
                expedited,
                first: i == 0,
                tail: if last { msg.take() } else { None },
            };
            self.fabric.transmit(self.id, dst, pkt, end);
            if last {
                self.tracer
                    .emit(end, comp, || TraceEvent::DmaDone { bytes: msg_bytes });
                self.handle.schedule_at(end, on_tx_done);
                break;
            }
        }
    }

    fn set_rx_handler(&self, handler: RxHandler) {
        self.inner.lock().handler = Some(handler);
    }

    fn set_ring_notify(&self, _notify: Arc<dyn Fn() + Send + Sync>) {
        // No receive ring: the kernel pushes every completed message.
    }

    fn poll_ring(&self) -> Option<(NodeId, WireMsg)> {
        // The kernel delivers everything by interrupt; nothing parks.
        None
    }

    fn ring_len(&self) -> usize {
        0
    }

    fn stats(&self) -> NicStats {
        let inner = self.inner.lock();
        let mut stats = inner.stats;
        stats.interrupts = inner.isr.stats().interrupts;
        stats.host_stolen = inner.stats.host_stolen + inner.isr.stats().total;
        stats.lost_packets = inner.fault.loss_stats().lost_packets;
        stats.retransmissions = inner.fault.loss_stats().retransmissions;
        stats.storm_interrupts = inner.fault.stats().storm_interrupts;
        stats
    }

    fn deliver_packet(&self, src: NodeId, pkt: Packet) {
        let now = self.handle.now();
        let mut inner = self.inner.lock();
        inner.stats.packets_rx += 1;
        inner.stats.bytes_rx += pkt.bytes;
        // Spurious storm interrupts accrued since the last delivery fire
        // ahead of the real packet's ISR, stealing host time and delaying
        // it behind them on the interrupt chain.
        let comp = Comp::Nic(self.id.0 as u32);
        if let Some((ticks, storm_cost)) = inner.fault.storm_ticks(now) {
            for _ in 0..ticks {
                inner.isr.raise(now, storm_cost);
                self.tracer
                    .emit(now, comp, || TraceEvent::Interrupt { cost: storm_cost });
            }
        }
        let mut cost = self.cfg.rx_per_packet
            + comb_sim::SimDuration::for_bytes(pkt.bytes, self.cfg.rx_bandwidth);
        if pkt.first {
            // Kernel-side matching for the message happens in the first
            // packet's ISR.
            cost += self.cfg.rx_match_cost;
        }
        let done = inner.isr.raise(now, cost);
        self.tracer
            .emit(now, comp, || TraceEvent::Interrupt { cost });
        if let Some(msg) = pkt.tail {
            inner.stats.msgs_rx += 1;
            let handler = inner
                .handler
                .clone()
                .expect("no rx handler installed on kernel NIC");
            // Park the handoff so the delivery event captures two words.
            let slot = inner.pending_rx.insert((handler, src, msg));
            drop(inner);
            let inner_ref = Arc::clone(&self.inner);
            self.handle.schedule_at(done, move || {
                // Take under the lock, then drop the guard before calling:
                // the handler may re-enter the NIC (e.g. post a reply).
                let (handler, src, msg) = inner_ref.lock().pending_rx.take(slot);
                handler(src, msg);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CpuConfig, HwConfig, LinkConfig};
    use crate::nic::DeliveryClass;
    use comb_sim::{SimDuration, Simulation};

    struct Rig {
        a: Arc<dyn Nic>,
        b: Arc<dyn Nic>,
        cpu_b: Cpu,
    }

    fn setup(sim: &Simulation) -> Rig {
        let cfg = HwConfig::portals_myrinet();
        let h = sim.handle();
        let fabric = Fabric::new(&h, LinkConfig::default());
        let cpu_a = Cpu::new(&h, CpuConfig::default());
        let cpu_b = Cpu::new(&h, CpuConfig::default());
        let a = KernelNic::attach(&h, &cfg.nic, &fabric, &cpu_a);
        let b = KernelNic::attach(&h, &cfg.nic, &fabric, &cpu_b);
        Rig { a, b, cpu_b }
    }

    fn wire(bytes: u64) -> WireMsg {
        WireMsg {
            bytes,
            class: DeliveryClass::Ring, // ignored by the kernel NIC
            expedited: false,
            payload: Box::new(bytes),
        }
    }

    #[test]
    fn every_packet_interrupts_and_steals() {
        let mut sim = Simulation::new();
        let rig = setup(&sim);
        let probe = sim.probe::<u64>();
        let p = probe.clone();
        rig.b
            .set_rx_handler(Arc::new(move |_, msg| p.set(msg.bytes)));
        let a = Arc::clone(&rig.a);
        sim.handle().schedule_in(SimDuration::ZERO, move || {
            a.submit(NodeId(1), wire(100_000), Box::new(|| {}));
        });
        sim.run().unwrap();
        assert_eq!(probe.get(), Some(100_000));
        let packets = 100_000u64.div_ceil(4096);
        assert_eq!(rig.b.stats().interrupts, packets);
        // All ISR time was stolen from node B's CPU.
        let stolen = rig.cpu_b.stats().stolen_total;
        assert!(
            stolen > SimDuration::from_millis(1),
            "100 KB must steal >1ms of ISR time, got {stolen}"
        );
        assert_eq!(rig.b.stats().host_stolen, stolen);
    }

    #[test]
    fn delivery_rate_is_isr_bound() {
        let mut sim = Simulation::new();
        let rig = setup(&sim);
        let probe = sim.probe::<u64>();
        let (p, h) = (probe.clone(), sim.handle());
        rig.b
            .set_rx_handler(Arc::new(move |_, _| p.set(h.now().as_nanos())));
        let a = Arc::clone(&rig.a);
        sim.handle().schedule_in(SimDuration::ZERO, move || {
            a.submit(NodeId(1), wire(1_000_000), Box::new(|| {}));
        });
        sim.run().unwrap();
        let mbs = 1_000_000.0 / (probe.get().unwrap() as f64 / 1e9) / 1e6;
        assert!(
            (70.0..95.0).contains(&mbs),
            "kernel delivery rate {mbs} MB/s"
        );
    }

    #[test]
    fn messaging_progresses_while_cpu_computes_but_dilates_the_work() {
        // The offload property (paper Fig 11/12): a transfer completes while
        // the receiver's process is busy computing, and the computation is
        // stretched by exactly the stolen ISR time.
        let mut sim = Simulation::new();
        let rig = setup(&sim);
        let delivered = sim.probe::<u64>();
        let (p, h) = (delivered.clone(), sim.handle());
        rig.b
            .set_rx_handler(Arc::new(move |_, _| p.set(h.now().as_nanos())));
        let a = Arc::clone(&rig.a);
        sim.handle().schedule_in(SimDuration::ZERO, move || {
            a.submit(NodeId(1), wire(200_000), Box::new(|| {}));
        });
        let work = sim.probe::<crate::cpu::ComputeSample>();
        let (cpu, w) = (rig.cpu_b.clone(), work.clone());
        sim.spawn("receiver-compute", move |ctx| {
            w.set(cpu.compute(ctx, SimDuration::from_millis(20)));
        });
        sim.run().unwrap();
        let s = work.get().unwrap();
        let delivered_at = delivered
            .get()
            .expect("message must complete with no MPI calls");
        assert!(
            delivered_at < (SimDuration::from_millis(20) + s.stolen).as_nanos(),
            "transfer must finish inside the work phase"
        );
        assert!(
            s.stolen > SimDuration::from_millis(2),
            "stolen = {}",
            s.stolen
        );
        assert_eq!(s.wall, SimDuration::from_millis(20) + s.stolen);
    }

    #[test]
    fn tx_path_steals_host_time_on_sender() {
        let mut sim = Simulation::new();
        let cfg = HwConfig::portals_myrinet();
        let h = sim.handle();
        let fabric = Fabric::new(&h, LinkConfig::default());
        let cpu_a = Cpu::new(&h, CpuConfig::default());
        let cpu_b = Cpu::new(&h, CpuConfig::default());
        let a = KernelNic::attach(&h, &cfg.nic, &fabric, &cpu_a);
        let b = KernelNic::attach(&h, &cfg.nic, &fabric, &cpu_b);
        b.set_rx_handler(Arc::new(|_, _| {}));
        let a2 = Arc::clone(&a);
        h.schedule_in(SimDuration::ZERO, move || {
            a2.submit(NodeId(1), wire(40_960), Box::new(|| {}));
        });
        sim.run().unwrap();
        // 10 packets x 5us tx host cost.
        assert_eq!(cpu_a.stats().stolen_total, SimDuration::from_micros(50));
    }
}
